/**
 * @file
 * SDC-anatomy subsystem tests: the element-wise output classifier
 * (magnitude semantics per output kind, spatial patterns, NaN
 * guards), aggregate-merge commutativity, the v2 run-record keys, the
 * instruction-vulnerability table, and the twin-run guarantee that
 * arming anatomy + tracing changes no campaign outcome.
 */

#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/obs.hh"
#include "fi/anatomy.hh"
#include "fi/campaign.hh"
#include "fi/report_log.hh"
#include "fi/site.hh"
#include "sim_test_util.hh"
#include "suite/suite.hh"

using namespace gpufi;
using namespace gpufi::fi;

namespace {

std::vector<uint8_t>
bytesOf(const std::vector<float> &v)
{
    std::vector<uint8_t> out(v.size() * 4);
    std::memcpy(out.data(), v.data(), out.size());
    return out;
}

std::vector<uint8_t>
bytesOf(const std::vector<uint32_t> &v)
{
    std::vector<uint8_t> out(v.size() * 4);
    std::memcpy(out.data(), v.data(), out.size());
    return out;
}

} // namespace

// ---- Element-wise classifier ---------------------------------------

TEST(Anatomy, F32MagnitudeIsAbsoluteDelta)
{
    std::vector<float> golden(16, 1.0f);
    std::vector<float> faulty = golden;
    faulty[5] = 4.0f;
    SdcAnatomy a = classifyAnatomy(bytesOf(golden), bytesOf(faulty),
                                   OutputKind::F32, 0);
    EXPECT_EQ(a.corruptedElems, 1u);
    EXPECT_EQ(a.totalElems, 16u);
    EXPECT_EQ(a.pattern, SpatialPattern::Single);
    EXPECT_DOUBLE_EQ(a.maxMagnitude, 3.0);
    EXPECT_DOUBLE_EQ(a.meanMagnitude, 3.0);
}

TEST(Anatomy, F32NanDeltaFallsBackToBitDistance)
{
    // A flipped exponent bit can turn a float into NaN or infinity;
    // the magnitude must stay finite so downstream means and the
    // metrics validator never see NaN.
    std::vector<float> golden(8, 1.0f);
    std::vector<uint8_t> gb = bytesOf(golden);
    std::vector<uint8_t> fb = gb;
    const uint32_t nanBits = 0x7FC00000u;
    std::memcpy(fb.data() + 3 * 4, &nanBits, 4);

    SdcAnatomy a = classifyAnatomy(gb, fb, OutputKind::F32, 0);
    ASSERT_EQ(a.corruptedElems, 1u);
    EXPECT_TRUE(std::isfinite(a.maxMagnitude));
    EXPECT_TRUE(std::isfinite(a.meanMagnitude));
    uint32_t oneBits = 0x3F800000u;
    double hamming = __builtin_popcount(oneBits ^ nanBits);
    EXPECT_DOUBLE_EQ(a.maxMagnitude, hamming);
}

TEST(Anatomy, U32MagnitudeIsHammingDistance)
{
    // Integer outputs (BFS levels, KM labels, NW scores, PATHF
    // sums): an FP delta of reinterpreted bits would be meaningless,
    // so magnitude is the bit-level Hamming distance.
    std::vector<uint32_t> golden(8, 0u);
    std::vector<uint32_t> faulty = golden;
    faulty[2] = 0xFFu; // 8 flipped bits
    faulty[6] = 0x1u;  // 1 flipped bit
    SdcAnatomy a = classifyAnatomy(bytesOf(golden), bytesOf(faulty),
                                   OutputKind::U32, 0);
    EXPECT_EQ(a.corruptedElems, 2u);
    EXPECT_DOUBLE_EQ(a.maxMagnitude, 8.0);
    EXPECT_DOUBLE_EQ(a.meanMagnitude, 4.5);
}

TEST(Anatomy, EveryWorkloadDeclaresItsOutputKind)
{
    // Regression per workload kind: the integer-output benchmarks
    // must report U32 (Hamming magnitudes) and the float ones F32 —
    // a new workload defaulting wrongly would silently produce
    // garbage magnitude statistics.
    const std::set<std::string> integerCodes = {"KM", "BFS", "PATHF",
                                                "NW"};
    for (const auto &info : suite::benchmarks()) {
        std::unique_ptr<Workload> wl = info.factory();
        OutputKind want = integerCodes.count(info.code)
                              ? OutputKind::U32
                              : OutputKind::F32;
        EXPECT_EQ(wl->outputKind(), want) << info.code;
    }
}

TEST(Anatomy, SpatialPatternClassification)
{
    const uint32_t rowElems = 8;
    std::vector<uint32_t> golden(64, 0u);
    auto classify = [&](std::vector<uint32_t> faulty) {
        return classifyAnatomy(bytesOf(golden), bytesOf(faulty),
                               OutputKind::U32, rowElems)
            .pattern;
    };

    std::vector<uint32_t> f = golden;
    f[9] = 1;
    EXPECT_EQ(classify(f), SpatialPattern::Single);

    f = golden; // two hits in row 1
    f[9] = f[14] = 1;
    EXPECT_EQ(classify(f), SpatialPattern::Row);

    f = golden; // dense 2x2 block spanning rows 2-3
    f[17] = f[18] = f[25] = f[26] = 1;
    EXPECT_EQ(classify(f), SpatialPattern::Block);

    f = golden; // opposite corners: sparse bounding box
    f[0] = f[63] = 1;
    EXPECT_EQ(classify(f), SpatialPattern::Scattered);

    // 1D (rowElems == 0): a contiguous span is the row analogue.
    std::vector<uint32_t> g1(32, 0u), f1(32, 0u);
    f1[4] = f1[5] = f1[6] = 1;
    EXPECT_EQ(classifyAnatomy(bytesOf(g1), bytesOf(f1),
                              OutputKind::U32, 0)
                  .pattern,
              SpatialPattern::Row);
}

// ---- Aggregation ----------------------------------------------------

namespace {

RunVerdict
sdcVerdict(uint32_t elems, SpatialPattern p, double mag, int32_t pc,
           const std::string &op)
{
    RunVerdict v;
    v.outcome = Outcome::SDC;
    v.anatomy.corruptedElems = elems;
    v.anatomy.totalElems = 1024;
    v.anatomy.pattern = p;
    v.anatomy.maxMagnitude = mag;
    v.anatomy.meanMagnitude = mag / 2;
    v.trace.armed = true;
    v.trace.read = true;
    v.trace.firstReadPc = pc;
    v.trace.opcode = op;
    v.trace.reachedMemory = true;
    return v;
}

} // namespace

TEST(Anatomy, StatsMergeIsCommutative)
{
    // Shard merge order must not matter: sums, maxima and the
    // per-instruction tallies all commute, so merged metrics are
    // independent of which shard finishes first.
    AnatomyStats a, b;
    a.add(sdcVerdict(1, SpatialPattern::Single, 2.0, 4, "fma"));
    a.add(sdcVerdict(6, SpatialPattern::Row, 9.0, 4, "fma"));
    b.add(sdcVerdict(3, SpatialPattern::Scattered, 5.0, 11, "ldg"));
    RunVerdict masked;
    masked.outcome = Outcome::Masked;
    masked.trace.armed = true;
    b.add(masked);

    AnatomyStats ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(anatomyReportSection(ab).dump(2),
              anatomyReportSection(ba).dump(2));
    EXPECT_EQ(formatInstructionTable(ab), formatInstructionTable(ba));
    EXPECT_EQ(ab.sdcWithAnatomy, 3u);
    EXPECT_EQ(ab.tracedRuns, 4u);
    EXPECT_EQ(ab.tracedReads, 3u);
    EXPECT_DOUBLE_EQ(ab.maxMagnitude, 9.0);
}

TEST(Anatomy, InstructionTableRanksByFailureCount)
{
    AnatomyStats s;
    s.add(sdcVerdict(1, SpatialPattern::Single, 1.0, 20, "ldg"));
    s.add(sdcVerdict(1, SpatialPattern::Single, 1.0, 20, "ldg"));
    s.add(sdcVerdict(1, SpatialPattern::Single, 1.0, 8, "fadd"));
    std::string table = formatInstructionTable(s);
    EXPECT_NE(table.find("pc"), std::string::npos);
    EXPECT_NE(table.find("fail%"), std::string::npos);
    // Two SDCs at pc 20 outrank one at pc 8.
    EXPECT_LT(table.find("ldg"), table.find("fadd"));
    EXPECT_EQ(formatInstructionTable(AnatomyStats{}), "");
}

// ---- v2 run-record serialization -----------------------------------

TEST(Anatomy, VerdictRoundTripsThroughRunLog)
{
    RunRecord r;
    r.runIdx = 3;
    r.plan.target = FaultTarget::RegisterFile;
    r.plan.cycle = 1000;
    r.plan.seed = 0xBEEF;
    r.injection.armed = true;
    r.verdict.outcome = Outcome::SDC;
    r.verdict.anatomy.corruptedElems = 2;
    r.verdict.anatomy.totalElems = 512;
    r.verdict.anatomy.pattern = SpatialPattern::Block;
    r.verdict.anatomy.maxMagnitude = 0.1;
    r.verdict.anatomy.meanMagnitude = 0.05;
    r.verdict.trace.armed = true;
    r.verdict.trace.read = true;
    r.verdict.trace.firstReadCycle = 1042;
    r.verdict.trace.firstReadPc = 17;
    r.verdict.trace.opcode = "fma";
    r.verdict.trace.cta = 2;
    r.verdict.trace.warp = 1;
    r.verdict.trace.reachedMemory = true;
    r.verdict.trace.reachedOutput = true;
    r.verdict.trace.cyclesToFirstRead = 42;

    std::string line = formatRunRecord(r);
    EXPECT_NE(line.find("an.pat=block"), std::string::npos);
    EXPECT_NE(line.find("tr.op=fma"), std::string::npos);
    RunRecord back = parseRunRecord(line);
    EXPECT_EQ(formatRunRecord(back), line);
    // cyclesToFirstRead is derived, not serialized: first read minus
    // injection cycle.
    EXPECT_EQ(back.verdict.trace.cyclesToFirstRead, 42u);
    EXPECT_DOUBLE_EQ(back.verdict.anatomy.maxMagnitude, 0.1);
}

TEST(Anatomy, ArmedUnreadTraceRoundTrips)
{
    RunRecord r;
    r.plan.target = FaultTarget::SharedMemory;
    r.verdict.outcome = Outcome::Masked;
    r.verdict.trace.armed = true; // armed, never read
    std::string line = formatRunRecord(r);
    EXPECT_NE(line.find("tr.read=0"), std::string::npos);
    EXPECT_EQ(line.find("tr.cycle="), std::string::npos);
    RunRecord back = parseRunRecord(line);
    EXPECT_TRUE(back.verdict.trace.armed);
    EXPECT_FALSE(back.verdict.trace.read);
    EXPECT_EQ(formatRunRecord(back), line);
}

TEST(Anatomy, FeaturelessRecordKeepsV1Grammar)
{
    // With anatomy and tracing off, the emitted line must be the v1
    // grammar byte-for-byte — no an./tr. keys — so old parsers and
    // resumed v1 journals keep working.
    RunRecord r;
    r.verdict.outcome = Outcome::SDC;
    std::string line = formatRunRecord(r);
    EXPECT_EQ(line.find("an."), std::string::npos);
    EXPECT_EQ(line.find("tr."), std::string::npos);
}

// ---- Twin-run: anatomy + tracing are behavior-neutral --------------

namespace {

/** Drop the v2-only tokens (an.* / tr.*) from a record stream. */
std::string
stripV2Keys(const std::string &stream)
{
    std::istringstream in(stream);
    std::string out, line;
    while (std::getline(in, line)) {
        std::istringstream tokens(line);
        std::string tok, rebuilt;
        while (tokens >> tok) {
            if (tok.rfind("an.", 0) == 0 || tok.rfind("tr.", 0) == 0)
                continue;
            rebuilt += (rebuilt.empty() ? "" : " ") + tok;
        }
        out += rebuilt + "\n";
    }
    return out;
}

} // namespace

TEST(AnatomyTwin, TracingChangesNoOutcome)
{
    // The taint hook and the element-wise diff are observational:
    // plans, injections, outcomes and per-run cycle counts must be
    // bit-identical with them armed. Only the extra an./tr. record
    // keys may differ.
    gpufi_test::TwinArm plain;
    plain.app = "VA";
    plain.spec.kernelName = "vecadd";
    plain.spec.runs = 40;
    plain.spec.seed = 77;

    gpufi_test::TwinArm traced = plain;
    traced.spec.anatomy = true;
    traced.spec.trace = true;
    EXPECT_EQ(campaignFingerprint(plain.spec),
              campaignFingerprint(traced.spec));

    gpufi_test::TwinOutcome off = gpufi_test::runTwinArm(plain);
    gpufi_test::TwinOutcome on = gpufi_test::runTwinArm(traced);

    EXPECT_EQ(off.result.counts, on.result.counts);
    EXPECT_EQ(stripV2Keys(on.stream), off.stream);
    // The plain arm carries no v2 keys at all...
    EXPECT_EQ(stripV2Keys(off.stream), off.stream);
    // ...and the traced arm armed a trace on every completed run
    // (register file supports tracing) and attached anatomy to every
    // SDC.
    EXPECT_EQ(on.result.anatomy.tracedRuns, traced.spec.runs);
    EXPECT_EQ(on.result.anatomy.sdcWithAnatomy,
              on.result.count(Outcome::SDC));
    EXPECT_TRUE(off.result.anatomy.empty());
}

TEST(AnatomyTwin, UntracedSiteStaysV1EvenWhenRequested)
{
    // Cache injections cannot attribute the first consumer to one
    // instruction, so requesting --anatomy against them must arm
    // nothing: supportsTracing() gates the hook per target.
    EXPECT_FALSE(siteFor(FaultTarget::L2).supportsTracing());

    gpufi_test::TwinArm plain;
    plain.app = "VA";
    plain.spec.kernelName = "vecadd";
    plain.spec.runs = 10;
    plain.spec.seed = 5;
    plain.spec.target = FaultTarget::L2;

    gpufi_test::TwinArm traced = plain;
    traced.spec.anatomy = true;
    traced.spec.trace = true;

    gpufi_test::TwinOutcome off = gpufi_test::runTwinArm(plain);
    gpufi_test::TwinOutcome on = gpufi_test::runTwinArm(traced);
    EXPECT_EQ(off.result.counts, on.result.counts);
    EXPECT_EQ(on.result.anatomy.tracedRuns, 0u);
    // Anatomy still attaches to SDCs (the output diff needs no
    // instruction attribution), but no tr. keys appear.
    EXPECT_EQ(on.stream.find("tr."), std::string::npos);
}
