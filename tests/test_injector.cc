/**
 * @file
 * Injection-engine tests. The twin-run pattern compares a faulted
 * simulation against a clean twin at the same cycle to verify that
 * exactly the planned bits flipped, in exactly the planned scope.
 */

#include <bit>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fi/fault.hh"
#include "fi/injector.hh"
#include "isa/assembler.hh"
#include "sim_test_util.hh"

using namespace gpufi;
using gpufi_test::tinyConfig;

namespace {

/** A kernel that spins long enough for mid-flight injection. */
const char kSpinKernel[] = R"(
.kernel spin
.reg 6
.smem 256
.local 8
    mov   r0, 200           # loop counter
    mov   r1, 0xAAAA
    mov   r2, %tid_x
    shl   r3, r2, 2
    sts   r1, [r3]          # shared[tid] = 0xAAAA
    mov   r4, 0x5555
    mov   r5, 0
    stl   r4, [r5]          # local[0] = 0x5555
loop:
    sub   r0, r0, 1
    brnz  r0, loop
    exit
)";

/** All (cta, thread, reg) register values, flattened. */
std::vector<uint32_t>
snapshotRegs(sim::Gpu &gpu)
{
    std::vector<uint32_t> out;
    for (auto *cta : gpu.activeCtas())
        out.insert(out.end(), cta->regFile.begin(),
                   cta->regFile.end());
    return out;
}

/** All shared-memory words of all CTAs. */
std::vector<uint32_t>
snapshotShared(sim::Gpu &gpu)
{
    std::vector<uint32_t> out;
    for (auto *cta : gpu.activeCtas())
        for (uint32_t a = 0; a + 4 <= cta->shared.size(); a += 4)
            out.push_back(cta->shared.read32(a));
    return out;
}

/** Bit-difference count between two snapshots. */
uint32_t
bitDiff(const std::vector<uint32_t> &a, const std::vector<uint32_t> &b)
{
    EXPECT_EQ(a.size(), b.size());
    uint32_t diff = 0;
    for (size_t i = 0; i < a.size(); ++i)
        diff += static_cast<uint32_t>(std::popcount(a[i] ^ b[i]));
    return diff;
}

/** Run the spin kernel, applying `plan` at `cycle`, and snapshot. */
struct TwinResult
{
    std::vector<uint32_t> regs;
    std::vector<uint32_t> shared;
    std::vector<uint32_t> local;
    fi::InjectionRecord record;
};

TwinResult
runWithPlan(const fi::FaultPlan *plan, uint64_t cycle)
{
    TwinResult result;
    mem::DeviceMemory dmem(1u << 20);
    sim::Gpu gpu(tinyConfig(), dmem);
    isa::Program prog = isa::assemble(kSpinKernel);
    if (plan) {
        gpu.scheduleInjection(cycle, [&](sim::Gpu &g) {
            applyFault(g, *plan, &result.record);
        });
    }
    gpu.scheduleInjection(cycle, [&](sim::Gpu &g) {
        result.regs = snapshotRegs(g);
        result.shared = snapshotShared(g);
        // Snapshot the whole local arena.
        result.local.clear();
        for (auto *cta : g.activeCtas())
            for (uint32_t t = 0; t < cta->threads.size(); ++t) {
                mem::Addr base = g.localAddr(*cta, t);
                result.local.push_back(g.mem().read32(base));
                result.local.push_back(g.mem().read32(base + 4));
            }
    });
    // A flipped loop counter can spin for billions of cycles; the
    // snapshots land at `cycle`, so bound the run like a campaign
    // does and treat the timeout as a normal end.
    gpu.setCycleLimit(50000);
    try {
        gpu.launch(prog.kernels.front(), {2, 1}, {64, 1}, {});
    } catch (const sim::TimeoutError &) {
    }
    return result;
}

} // namespace

TEST(Injector, ThreadScopeFlipsExactlyPlannedBits)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::RegisterFile;
    plan.scope = fi::FaultScope::Thread;
    plan.nBits = 1;
    plan.seed = 42;
    TwinResult faulted = runWithPlan(&plan, 100);
    TwinResult clean = runWithPlan(nullptr, 100);
    ASSERT_TRUE(faulted.record.armed) << faulted.record.detail;
    EXPECT_EQ(bitDiff(faulted.regs, clean.regs), 1u);
}

TEST(Injector, TripleBitThreadScope)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::RegisterFile;
    plan.nBits = 3;
    plan.seed = 43;
    TwinResult faulted = runWithPlan(&plan, 100);
    TwinResult clean = runWithPlan(nullptr, 100);
    ASSERT_TRUE(faulted.record.armed);
    EXPECT_EQ(bitDiff(faulted.regs, clean.regs), 3u);
}

TEST(Injector, WarpScopeHitsWholeWarp)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::RegisterFile;
    plan.scope = fi::FaultScope::Warp;
    plan.nBits = 2;
    plan.seed = 44;
    TwinResult faulted = runWithPlan(&plan, 100);
    TwinResult clean = runWithPlan(nullptr, 100);
    ASSERT_TRUE(faulted.record.armed);
    // 32 live threads x 2 bits, same register and bits each.
    EXPECT_EQ(bitDiff(faulted.regs, clean.regs), 64u);
}

TEST(Injector, SharedMemoryHitsOneCta)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::SharedMemory;
    plan.nBits = 1;
    plan.seed = 45;
    TwinResult faulted = runWithPlan(&plan, 150);
    TwinResult clean = runWithPlan(nullptr, 150);
    ASSERT_TRUE(faulted.record.armed);
    EXPECT_EQ(bitDiff(faulted.shared, clean.shared), 1u);
    EXPECT_EQ(bitDiff(faulted.regs, clean.regs), 0u);
}

TEST(Injector, LocalMemoryHitsOneThread)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::LocalMemory;
    plan.nBits = 2;
    plan.seed = 46;
    TwinResult faulted = runWithPlan(&plan, 150);
    TwinResult clean = runWithPlan(nullptr, 150);
    ASSERT_TRUE(faulted.record.armed);
    EXPECT_EQ(bitDiff(faulted.local, clean.local), 2u);
}

TEST(Injector, LocalWarpScope)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::LocalMemory;
    plan.scope = fi::FaultScope::Warp;
    plan.nBits = 1;
    plan.seed = 47;
    TwinResult faulted = runWithPlan(&plan, 150);
    TwinResult clean = runWithPlan(nullptr, 150);
    ASSERT_TRUE(faulted.record.armed);
    EXPECT_EQ(bitDiff(faulted.local, clean.local), 32u);
}

TEST(Injector, SamePlanReplaysIdentically)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::RegisterFile;
    plan.nBits = 1;
    plan.seed = 48;
    TwinResult a = runWithPlan(&plan, 100);
    TwinResult b = runWithPlan(&plan, 100);
    EXPECT_EQ(a.record.detail, b.record.detail);
    EXPECT_EQ(a.regs, b.regs);
}

TEST(Injector, DifferentSeedsPickDifferentVictims)
{
    // Across several seeds, at least two distinct victims appear.
    std::set<std::string> details;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        fi::FaultPlan plan;
        plan.target = fi::FaultTarget::RegisterFile;
        plan.seed = seed;
        details.insert(runWithPlan(&plan, 100).record.detail);
    }
    EXPECT_GE(details.size(), 2u);
}

TEST(Injector, CacheTargetsReportArming)
{
    for (auto target : {fi::FaultTarget::L1Data,
                        fi::FaultTarget::L1Texture,
                        fi::FaultTarget::L2}) {
        fi::FaultPlan plan;
        plan.target = target;
        plan.seed = 49;
        TwinResult r = runWithPlan(&plan, 100);
        // The spin kernel touches no caches, so lines are invalid
        // and the fault is trivially masked — but the injector must
        // still report what it aimed at.
        EXPECT_FALSE(r.record.detail.empty());
        EXPECT_EQ(bitDiff(r.regs, runWithPlan(nullptr, 100).regs), 0u);
    }
}

TEST(Injector, SimtStackFaultHitsOneWarp)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::SimtStack;
    plan.nBits = 1;
    plan.seed = 51;
    TwinResult faulted = runWithPlan(&plan, 100);
    TwinResult clean = runWithPlan(nullptr, 100);
    ASSERT_TRUE(faulted.record.armed) << faulted.record.detail;
    EXPECT_NE(faulted.record.detail.find("simt stack of"),
              std::string::npos);
    // The stack is control state: registers, shared and local memory
    // are untouched at the firing cycle.
    EXPECT_EQ(bitDiff(faulted.regs, clean.regs), 0u);
    EXPECT_EQ(bitDiff(faulted.shared, clean.shared), 0u);
}

TEST(Injector, WarpCtrlFaultHitsControlWord)
{
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::WarpCtrl;
    plan.nBits = 2;
    plan.seed = 52;
    TwinResult faulted = runWithPlan(&plan, 100);
    TwinResult clean = runWithPlan(nullptr, 100);
    ASSERT_TRUE(faulted.record.armed) << faulted.record.detail;
    EXPECT_NE(faulted.record.detail.find("ctrl of warp"),
              std::string::npos);
    EXPECT_EQ(bitDiff(faulted.regs, clean.regs), 0u);
}

TEST(Injector, InjectionAfterCompletionIsMasked)
{
    // Cycle far beyond the app: callback never fires; run completes.
    fi::FaultPlan plan;
    plan.target = fi::FaultTarget::RegisterFile;
    plan.seed = 50;
    mem::DeviceMemory dmem(1u << 20);
    sim::Gpu gpu(tinyConfig(), dmem);
    isa::Program prog = isa::assemble(kSpinKernel);
    fi::InjectionRecord rec;
    gpu.scheduleInjection(1u << 30, [&](sim::Gpu &g) {
        applyFault(g, plan, &rec);
    });
    gpu.launch(prog.kernels.front(), {1, 1}, {32, 1}, {});
    EXPECT_FALSE(rec.armed);
}

TEST(Injector, TargetNamesRoundTrip)
{
    using fi::FaultTarget;
    for (size_t i = 0;
         i < static_cast<size_t>(FaultTarget::NUM_TARGETS); ++i) {
        auto t = static_cast<FaultTarget>(i);
        EXPECT_EQ(fi::targetFromName(fi::targetName(t)), t);
    }
    EXPECT_THROW(fi::targetFromName("l9"), FatalError);
    EXPECT_STREQ(fi::scopeName(fi::FaultScope::Thread), "thread");
    EXPECT_STREQ(fi::scopeName(fi::FaultScope::Warp), "warp");
}
