/**
 * @file
 * Distributed campaign fabric tests (DESIGN.md §14): deterministic
 * run-index sharding, the CampaignResult merge algebra, the `@shard`
 * journal annotation, and the crash-safe journal merge — including
 * every class of input the merge must reject (overlapping shards,
 * seed/config drift, mislabeled records, unannotated journals).
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fi/campaign.hh"
#include "fi/journal.hh"
#include "fi/report_log.hh"
#include "fi/shard.hh"
#include "sim/gpu_config.hh"
#include "suite/suite.hh"

using namespace gpufi;
using namespace gpufi::fi;

namespace {

sim::GpuConfig
fastCard()
{
    sim::GpuConfig c = sim::makeRtx2060();
    c.numSms = 4;
    c.validate();
    return c;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

CampaignSpec
vaSpec(uint32_t runs, uint64_t seed)
{
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.runs = runs;
    spec.seed = seed;
    spec.keepRecords = true;
    return spec;
}

/** Run the spec (sharded or not) with a journal at @p path. */
CampaignResult
runWithJournal(const CampaignSpec &spec, const std::string &path,
               std::vector<RunRecord> *records = nullptr,
               const sim::GpuConfig *card = nullptr)
{
    sim::GpuConfig c = card ? *card : fastCard();
    CampaignRunner runner(c, suite::factoryFor("VA"), 1);
    RunJournal journal;
    std::remove(path.c_str());
    journal.open(path);
    return runner.run(spec, records, &journal);
}

CampaignResult
randomResult(Rng &rng)
{
    CampaignResult r;
    for (auto &c : r.counts)
        c = static_cast<uint32_t>(rng.range(0, 40));
    return r;
}

} // namespace

// ---- ShardCoord ----------------------------------------------------

TEST(Shard, ParsesAndFormatsCoordinates)
{
    ShardCoord c;
    std::string err;
    ASSERT_TRUE(tryParseShardCoord("2/5", c, &err));
    EXPECT_EQ(c.index, 2u);
    EXPECT_EQ(c.count, 5u);
    EXPECT_EQ(c.str(), "2/5");
    EXPECT_TRUE(c.sharded());

    ASSERT_TRUE(tryParseShardCoord("0/1", c, &err));
    EXPECT_FALSE(c.sharded());

    for (const char *bad :
         {"", "3", "/", "1/", "/4", "a/b", "3/3", "4/3", "-1/3",
          "1/0", "1/2x"}) {
        EXPECT_FALSE(tryParseShardCoord(bad, c, &err))
            << "accepted '" << bad << "'";
    }
}

TEST(Shard, OwnershipPartitionsEveryRunExactlyOnce)
{
    const uint32_t runs = 97;   // prime: exercises ragged tails
    for (uint32_t n : {1u, 2u, 3u, 4u, 7u, 97u, 100u}) {
        uint32_t total = 0;
        for (uint32_t i = 0; i < n; ++i) {
            ShardCoord c{i, n};
            uint32_t owned = 0;
            for (uint32_t idx = 0; idx < runs; ++idx)
                owned += c.owns(idx) ? 1 : 0;
            EXPECT_EQ(owned, c.ownedRuns(runs))
                << "shard " << c.str();
            total += owned;
        }
        EXPECT_EQ(total, runs) << "count " << n;
    }
}

// ---- CampaignResult merge algebra (satellite: property tests) ------

TEST(CampaignResultMerge, CommutativeAssociativeWithIdentity)
{
    Rng rng(0xfab5);
    for (int trial = 0; trial < 200; ++trial) {
        CampaignResult a = randomResult(rng);
        CampaignResult b = randomResult(rng);
        CampaignResult c = randomResult(rng);

        CampaignResult ab = a;
        ab.merge(b);
        CampaignResult ba = b;
        ba.merge(a);
        EXPECT_EQ(ab.counts, ba.counts);

        CampaignResult abc1 = ab;      // (a+b)+c
        abc1.merge(c);
        CampaignResult bc = b;
        bc.merge(c);
        CampaignResult abc2 = a;       // a+(b+c)
        abc2.merge(bc);
        EXPECT_EQ(abc1.counts, abc2.counts);

        CampaignResult withZero = a;   // a + 0 == a
        withZero.merge(CampaignResult{});
        EXPECT_EQ(withZero.counts, a.counts);

        // The derived statistics are pure functions of the counts.
        EXPECT_DOUBLE_EQ(abc1.failureRatio(), abc2.failureRatio());
        EXPECT_EQ(abc1.validRuns(), abc2.validRuns());
    }
}

TEST(CampaignResultMerge, DisjointShardResultsEqualUnsharded)
{
    CampaignSpec spec = vaSpec(9, 5);
    sim::GpuConfig card = fastCard();
    CampaignRunner whole(card, suite::factoryFor("VA"), 1);
    std::vector<RunRecord> wantRecords;
    CampaignResult want = whole.run(spec, &wantRecords);
    ASSERT_EQ(want.runs(), spec.runs);

    const uint32_t n = 3;
    CampaignResult merged;
    std::vector<RunRecord> all;
    for (uint32_t i = 0; i < n; ++i) {
        CampaignSpec sub = spec;
        sub.shardIndex = i;
        sub.shardCount = n;
        CampaignRunner part(card, suite::factoryFor("VA"), 1);
        std::vector<RunRecord> records;
        CampaignResult r = part.run(sub, &records);
        ShardCoord coord{i, n};
        EXPECT_EQ(r.runs(), coord.ownedRuns(spec.runs));
        merged.merge(r);
        all.insert(all.end(), records.begin(), records.end());
    }

    EXPECT_EQ(merged.counts, want.counts);
    std::sort(all.begin(), all.end(),
              [](const RunRecord &a, const RunRecord &b) {
                  return a.runIdx < b.runIdx;
              });
    ASSERT_EQ(all.size(), wantRecords.size());
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(formatRunRecord(all[i]),
                  formatRunRecord(wantRecords[i]));
}

TEST(Shard, FingerprintIgnoresShardCoordinates)
{
    CampaignSpec a = vaSpec(30, 7);
    CampaignSpec b = a;
    b.shardIndex = 2;
    b.shardCount = 3;
    b.runs = 30;
    EXPECT_EQ(campaignFingerprint(a), campaignFingerprint(b));
}

// ---- Journal merge -------------------------------------------------

namespace {

/** Run spec split 3 ways; returns the shard journal paths. */
std::vector<std::string>
runShardedTriple(const CampaignSpec &spec, const std::string &stem)
{
    std::vector<std::string> paths;
    for (uint32_t i = 0; i < 3; ++i) {
        CampaignSpec sub = spec;
        sub.shardIndex = i;
        sub.shardCount = 3;
        std::string path =
            tmpPath(stem + std::to_string(i) + ".jnl");
        runWithJournal(sub, path);
        paths.push_back(path);
    }
    return paths;
}

} // namespace

TEST(MergeJournals, ShardedJournalsMergeBitIdentical)
{
    CampaignSpec spec = vaSpec(9, 11);
    std::vector<RunRecord> wantRecords;
    sim::GpuConfig card = fastCard();
    CampaignRunner whole(card, suite::factoryFor("VA"), 1);
    CampaignResult want = whole.run(spec, &wantRecords);

    std::vector<std::string> paths =
        runShardedTriple(spec, "merge_ok_");

    MergeReport report;
    std::string err;
    ASSERT_TRUE(mergeShardJournals(paths, report, &err)) << err;
    ASSERT_EQ(report.campaigns.size(), 1u);
    const MergedCampaign &mc = report.campaigns[0];
    EXPECT_TRUE(mc.complete());
    EXPECT_EQ(mc.fingerprint, campaignFingerprint(spec));
    EXPECT_EQ(mc.result.counts, want.counts);

    // The merged log is byte-identical to the single-process log.
    std::string wantLog = "# gpuFI-4 run log\n";
    for (const RunRecord &r : wantRecords)
        wantLog += formatRunRecord(r) + "\n";
    EXPECT_EQ(formatMergedRunLog(report), wantLog);
}

TEST(MergeJournals, HealsTornTailPerInput)
{
    CampaignSpec spec = vaSpec(9, 13);
    std::vector<std::string> paths =
        runShardedTriple(spec, "merge_torn_");

    // Tear the final record of shard 1 mid-line, as a power cut
    // would: that run is lost, everything before it must survive.
    std::string bytes = slurp(paths[1]);
    size_t cut = bytes.rfind('\n', bytes.size() - 2);
    std::ofstream(paths[1], std::ios::trunc)
        << bytes.substr(0, cut + 1 + 10);

    MergeReport strict;
    std::string err;
    EXPECT_FALSE(mergeShardJournals(paths, strict, &err));
    EXPECT_NE(err.find("missing"), std::string::npos) << err;

    MergeReport report;
    ASSERT_TRUE(mergeShardJournals(paths, report, &err, true)) << err;
    EXPECT_EQ(report.healedLines, 1u);
    ASSERT_EQ(report.campaigns.size(), 1u);
    const MergedCampaign &mc = report.campaigns[0];
    EXPECT_FALSE(mc.complete());
    ASSERT_EQ(mc.missing.size(), 1u);
    // Shard 1 of 3 over 9 runs owns {1, 4, 7}; the torn line was
    // its last record.
    EXPECT_EQ(mc.missing[0], 7u);
    EXPECT_EQ(mc.result.runs(), spec.runs - 1);
}

TEST(MergeJournals, RejectsOverlappingShardCoordinates)
{
    CampaignSpec spec = vaSpec(9, 17);
    std::vector<std::string> paths =
        runShardedTriple(spec, "merge_dup_");

    MergeReport report;
    std::string err;
    EXPECT_FALSE(mergeShardJournals({paths[0], paths[0]}, report,
                                    &err));
    EXPECT_NE(err.find("overlapping shard"), std::string::npos)
        << err;
}

TEST(MergeJournals, RejectsSeedDriftViaFingerprint)
{
    CampaignSpec specA = vaSpec(9, 19);
    CampaignSpec specB = vaSpec(9, 23);   // drifted seed
    specA.shardIndex = 0;
    specA.shardCount = 3;
    specB.shardIndex = 1;
    specB.shardCount = 3;
    std::string pathA = tmpPath("merge_seed_a.jnl");
    std::string pathB = tmpPath("merge_seed_b.jnl");
    runWithJournal(specA, pathA);
    runWithJournal(specB, pathB);

    MergeReport report;
    std::string err;
    EXPECT_FALSE(mergeShardJournals({pathA, pathB}, report, &err));
    EXPECT_NE(err.find("mismatched campaign fingerprints"),
              std::string::npos)
        << err;
}

TEST(MergeJournals, RejectsConfigDriftViaPlanDigest)
{
    // Same spec (same fingerprint!) but a different GPU config: the
    // golden profile shifts, so the drawn plans shift, and the plan
    // digest must catch what the fingerprint cannot.
    CampaignSpec spec = vaSpec(9, 29);
    CampaignSpec sub0 = spec;
    sub0.shardIndex = 0;
    sub0.shardCount = 3;
    CampaignSpec sub1 = spec;
    sub1.shardIndex = 1;
    sub1.shardCount = 3;

    std::string path0 = tmpPath("merge_cfg_0.jnl");
    std::string path1 = tmpPath("merge_cfg_1.jnl");
    sim::GpuConfig small = fastCard();
    sim::GpuConfig big = sim::makeRtx2060();   // 30 SMs, not 4
    runWithJournal(sub0, path0, nullptr, &small);
    runWithJournal(sub1, path1, nullptr, &big);

    MergeReport report;
    std::string err;
    EXPECT_FALSE(mergeShardJournals({path0, path1}, report, &err));
    EXPECT_NE(err.find("plan digests differ"), std::string::npos)
        << err;
}

TEST(MergeJournals, RejectsRecordOutsideItsShard)
{
    CampaignSpec spec = vaSpec(9, 31);
    std::vector<std::string> paths =
        runShardedTriple(spec, "merge_stray_");

    // Graft one of shard 1's (perfectly checksummed) record lines
    // into shard 0's journal: the merge must notice the run index
    // cannot belong to shard 0/3.
    std::istringstream in(slurp(paths[1]));
    std::string line, stray;
    while (std::getline(in, line))
        if (!line.empty() && line[0] == 'c')
            stray = line;   // last record line of shard 1
    ASSERT_FALSE(stray.empty());
    std::ofstream(paths[0], std::ios::app) << stray << "\n";

    MergeReport report;
    std::string err;
    EXPECT_FALSE(mergeShardJournals(paths, report, &err));
    EXPECT_NE(err.find("outside its declared shard"),
              std::string::npos)
        << err;
}

TEST(MergeJournals, RejectsUnannotatedJournal)
{
    // An unsharded campaign journal (no @shard line) must not slip
    // into a merge set: nothing proves it is a disjoint slice.
    CampaignSpec spec = vaSpec(9, 37);
    std::string path = tmpPath("merge_plain.jnl");
    runWithJournal(spec, path);

    MergeReport report;
    std::string err;
    EXPECT_FALSE(mergeShardJournals({path}, report, &err));
    EXPECT_NE(err.find("without a @shard annotation"),
              std::string::npos)
        << err;
}

TEST(MergeJournals, PartialMergeOfOneShardReportsTheGaps)
{
    CampaignSpec spec = vaSpec(9, 41);
    std::vector<std::string> paths =
        runShardedTriple(spec, "merge_gap_");

    MergeReport report;
    std::string err;
    ASSERT_TRUE(mergeShardJournals({paths[2]}, report, &err, true))
        << err;
    ASSERT_EQ(report.campaigns.size(), 1u);
    const MergedCampaign &mc = report.campaigns[0];
    // Shard 2 of 3 over 9 runs owns {2, 5, 8}; the rest are gaps.
    EXPECT_EQ(mc.result.runs(), 3u);
    EXPECT_EQ(mc.missing,
              (std::vector<uint32_t>{0, 1, 3, 4, 6, 7}));
}

TEST(Shard, AnnotationSurvivesResume)
{
    // A sharded shard journal re-opened for --resume re-appends an
    // identical annotation; loadJournal must keep exactly one and
    // report no conflict.
    CampaignSpec spec = vaSpec(9, 43);
    spec.shardIndex = 1;
    spec.shardCount = 3;
    std::string path = tmpPath("shard_reopen.jnl");
    runWithJournal(spec, path);

    JournalContents prior = loadJournal(path);
    uint64_t fp = campaignFingerprint(spec);
    {
        sim::GpuConfig card = fastCard();
        CampaignRunner runner(card, suite::factoryFor("VA"), 1);
        RunJournal journal;
        journal.open(path);
        runner.run(spec, nullptr, &journal, &prior.byCampaign[fp]);
    }

    JournalContents c = loadJournal(path);
    EXPECT_EQ(c.annotationConflicts, 0u);
    ASSERT_EQ(c.shardByCampaign.size(), 1u);
    const ShardAnnotation &ann =
        c.shardByCampaign.begin()->second;
    EXPECT_EQ(ann.shard, (ShardCoord{1, 3}));
    EXPECT_EQ(ann.runs, spec.runs);
}
