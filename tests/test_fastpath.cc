/**
 * @file
 * Differential twin-run gates for the raw-speed cycle-loop work.
 * Each fast-path stage — the decoded-instruction cache, event-driven
 * idle skipping, the SoA scheduler pre-filter — and the
 * delta-snapshot campaign path is admissible only if a campaign with
 * the stage enabled produces bit-identical records (same seeds, same
 * plans, same outcomes and cycle counts) to the all-off reference
 * interpreter that `gpufi --no-fastpath` selects. The stages are
 * gated one at a time, all together, and across every registered
 * fault site, so a stage that subtly reorders scheduling or warps a
 * cycle count cannot land.
 */

#include <cstddef>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "fi/site.hh"
#include "sim_test_util.hh"

using namespace gpufi;
using gpufi_test::TwinArm;

namespace {

/** The all-off arm: what `gpufi --no-fastpath` runs. */
TwinArm
referenceArm()
{
    TwinArm arm;
    arm.card.setFastPath(false);
    arm.spec.deltaSnapshots = false;
    arm.spec.kernelName = "vecadd";
    arm.spec.runs = 12;
    arm.spec.seed = 7;
    return arm;
}

struct Stage
{
    const char *name;
    void (*enable)(TwinArm &);
};

constexpr Stage kStages[] = {
    {"fastDecode", [](TwinArm &a) { a.card.fastDecode = true; }},
    {"fastIdleSkip", [](TwinArm &a) { a.card.fastIdleSkip = true; }},
    {"fastSched", [](TwinArm &a) { a.card.fastSched = true; }},
    {"deltaSnapshots",
     [](TwinArm &a) { a.spec.deltaSnapshots = true; }},
};

/** Structure-exercising workload, as in injector_smoke. */
const char *
benchFor(fi::FaultTarget t)
{
    switch (t) {
      case fi::FaultTarget::SharedMemory:
      case fi::FaultTarget::L1Texture:
        return "SRAD2";
      default:
        return "KM";
    }
}

const char *
kernelFor(const char *bench)
{
    return bench[0] == 'S' ? "srad2_grad" : "km_assign";
}

} // namespace

class FastPathStage : public ::testing::TestWithParam<size_t>
{};

TEST_P(FastPathStage, StageAloneIsAdmissible)
{
    const Stage &stage = kStages[GetParam()];
    TwinArm ref = referenceArm();
    TwinArm var = referenceArm();
    stage.enable(var);
    gpufi_test::expectTwinEquivalence(ref, var, stage.name);
}

INSTANTIATE_TEST_SUITE_P(
    AllStages, FastPathStage,
    ::testing::Range<size_t>(0, std::size(kStages)),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return kStages[info.param].name;
    });

TEST(FastPath, AllStagesTogetherAreAdmissible)
{
    TwinArm ref = referenceArm();
    TwinArm fast = referenceArm();
    fast.card.setFastPath(true);
    fast.spec.deltaSnapshots = true;
    gpufi_test::expectTwinEquivalence(ref, fast, "all-stages");
}

TEST(FastPath, AdmissibleAcrossAllFaultSites)
{
    // The full fast path against the reference, once per registered
    // fault site, on a workload that actually exercises the
    // structure. Identical counts per site pin the whole AVF/FIT
    // pipeline: eq. 1-3 are pure functions of the per-site counts.
    for (const fi::FaultSite *site : fi::allSites()) {
        TwinArm ref = referenceArm();
        if (!site->available(ref.card))
            continue;
        const char *bench = benchFor(site->target());
        ref.app = bench;
        ref.spec.kernelName = kernelFor(bench);
        ref.spec.target = site->target();
        ref.spec.runs = 8;
        TwinArm fast = ref;
        fast.card.setFastPath(true);
        fast.spec.deltaSnapshots = true;
        gpufi_test::expectTwinEquivalence(ref, fast, site->name());
    }
}

TEST(FastPath, WorkerCountIsAdmissible)
{
    // Worker threads partition the run indices but every plan is a
    // pure function of (seed, runIdx), so parallelism must not show
    // in the records either.
    TwinArm ref = referenceArm();
    ref.card.setFastPath(true);
    ref.spec.deltaSnapshots = true;
    TwinArm parallel = ref;
    parallel.threads = 3;
    gpufi_test::expectTwinEquivalence(ref, parallel, "three-workers");
}
