/**
 * @file
 * Snapshot/restore tests: capturing complete simulator state
 * mid-kernel and resuming it in a fresh Gpu must reproduce the
 * original execution bit-for-bit, and fast-forwarded campaigns must
 * be indistinguishable from from-scratch campaigns (same seeds ->
 * same RunRecords).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "fi/campaign.hh"
#include "fi/workload.hh"
#include "mem/backing.hh"
#include "sim/gpu.hh"
#include "sim/gpu_config.hh"
#include "sim/snapshot.hh"
#include "suite/suite.hh"

using namespace gpufi;
using namespace gpufi::fi;

namespace {

sim::GpuConfig
fastCard()
{
    sim::GpuConfig c = sim::makeRtx2060();
    c.numSms = 4;
    c.validate();
    return c;
}

void
expectStatsEqual(const std::vector<sim::LaunchStats> &a,
                 const std::vector<sim::LaunchStats> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("launch " + std::to_string(i));
        EXPECT_EQ(a[i].kernelName, b[i].kernelName);
        EXPECT_EQ(a[i].startCycle, b[i].startCycle);
        EXPECT_EQ(a[i].endCycle, b[i].endCycle);
        EXPECT_EQ(a[i].warpInstructions, b[i].warpInstructions);
        EXPECT_EQ(a[i].totalThreads, b[i].totalThreads);
        EXPECT_EQ(a[i].regsPerThread, b[i].regsPerThread);
        EXPECT_EQ(a[i].smemPerCta, b[i].smemPerCta);
        EXPECT_EQ(a[i].localPerThread, b[i].localPerThread);
        EXPECT_EQ(a[i].occupancy, b[i].occupancy);
        EXPECT_EQ(a[i].threadsMeanPerSm, b[i].threadsMeanPerSm);
        EXPECT_EQ(a[i].ctasMeanPerSm, b[i].ctasMeanPerSm);
    }
}

} // namespace

/**
 * Save/restore round trip at several points of the execution, for
 * workloads covering single-kernel (VA), multi-kernel with host-side
 * reads between launches (SRAD1), and data-dependent launch counts
 * with host-side reads and writes (BFS).
 */
class SnapshotRoundTrip : public ::testing::TestWithParam<const char *>
{};

TEST_P(SnapshotRoundTrip, RestoredRunIsBitIdentical)
{
    sim::GpuConfig cfg = fastCard();
    WorkloadFactory factory = suite::factoryFor(GetParam());
    std::unique_ptr<Workload> wl = factory();

    // Post-setup() memory image, shared by every execution below.
    mem::DeviceMemory setupMem(wl->memBytes());
    wl->setup(setupMem);
    mem::DeviceMemory::Image setupImage;
    setupMem.snapshot(setupImage);

    // Plain baseline run (no recording), to learn the total cycles.
    mem::DeviceMemory baseMem(wl->memBytes());
    baseMem.restore(setupImage);
    sim::Gpu base(cfg, baseMem);
    std::vector<sim::LaunchStats> baseStats = wl->run(base);
    const uint64_t totalCycles = base.cycle();
    std::vector<uint8_t> baseOutput = wl->readOutput(baseMem);
    ASSERT_GT(totalCycles, 0u);

    // Pioneer run: record the trace and capture snapshots (plus the
    // machine hash) at ~25/50/75% of the execution.
    std::vector<uint64_t> snapCycles = {
        totalCycles / 4, totalCycles / 2, (3 * totalCycles) / 4};
    std::vector<sim::GpuSnapshot> snaps(snapCycles.size());
    std::vector<StateHasher> hashAtCapture(snapCycles.size());

    mem::DeviceMemory pioneerMem(wl->memBytes());
    pioneerMem.restore(setupImage);
    sim::Gpu pioneer(cfg, pioneerMem);
    sim::GoldenTrace trace;
    pioneer.record(&trace);
    for (size_t i = 0; i < snapCycles.size(); ++i)
        pioneer.scheduleInjection(snapCycles[i], [&, i](sim::Gpu &g) {
            g.captureSnapshot(snaps[i]);
            hashAtCapture[i] = g.stateHash();
        });
    std::vector<sim::LaunchStats> pioneerStats = wl->run(pioneer);

    // Recording must not perturb the execution.
    EXPECT_EQ(pioneer.cycle(), totalCycles);
    expectStatsEqual(pioneerStats, baseStats);
    EXPECT_EQ(wl->readOutput(pioneerMem), baseOutput);
    EXPECT_FALSE(trace.hashes.empty());

    // Resume from each snapshot in a fresh Gpu over a fresh memory
    // restored to the setup image; everything downstream must match.
    for (size_t i = 0; i < snaps.size(); ++i) {
        SCOPED_TRACE("snapshot at cycle " +
                     std::to_string(snapCycles[i]));
        ASSERT_TRUE(snaps[i].valid);
        EXPECT_EQ(snaps[i].cycle, snapCycles[i]);

        mem::DeviceMemory replayMem(wl->memBytes());
        replayMem.restore(setupImage);
        sim::Gpu replay(cfg, replayMem);
        replay.beginReplay(trace, snaps[i]);

        // The machine hash right after restore must equal the hash
        // at the capture point — full microarchitectural identity.
        StateHasher hashAtResume;
        bool resumed = false;
        replay.scheduleInjection(snapCycles[i], [&](sim::Gpu &g) {
            hashAtResume = g.stateHash();
            resumed = true;
        });

        std::vector<sim::LaunchStats> replayStats = wl->run(replay);
        ASSERT_TRUE(resumed);
        EXPECT_TRUE(hashAtResume == hashAtCapture[i]);
        EXPECT_EQ(replay.cycle(), totalCycles);
        expectStatsEqual(replayStats, baseStats);
        EXPECT_EQ(wl->readOutput(replayMem), baseOutput);
    }
}

INSTANTIATE_TEST_SUITE_P(SaveRestore, SnapshotRoundTrip,
                         ::testing::Values("VA", "SRAD1", "BFS"));

TEST(SnapshotIntegrity, SealedDigestDetectsTampering)
{
    sim::GpuConfig cfg = fastCard();
    std::unique_ptr<Workload> wl = suite::factoryFor("VA")();
    mem::DeviceMemory setupMem(wl->memBytes());
    wl->setup(setupMem);
    mem::DeviceMemory::Image setupImage;
    setupMem.snapshot(setupImage);

    mem::DeviceMemory baseMem(wl->memBytes());
    baseMem.restore(setupImage);
    sim::Gpu base(cfg, baseMem);
    wl->run(base);
    const uint64_t totalCycles = base.cycle();

    mem::DeviceMemory pioneerMem(wl->memBytes());
    pioneerMem.restore(setupImage);
    sim::Gpu pioneer(cfg, pioneerMem);
    sim::GoldenTrace trace;
    pioneer.record(&trace);
    sim::GpuSnapshot snap;
    pioneer.scheduleInjection(totalCycles / 2, [&](sim::Gpu &g) {
        g.captureSnapshot(snap);
    });
    wl->run(pioneer);
    ASSERT_TRUE(snap.valid);

    // captureSnapshot seals; undoing a tamper restores the verdict.
    EXPECT_TRUE(snap.verify());
    snap.mem.bytes[0] ^= 1;
    EXPECT_FALSE(snap.verify());
    snap.mem.bytes[0] ^= 1;
    EXPECT_TRUE(snap.verify());
    snap.warpArrival ^= 1; // scheduler state counts too
    EXPECT_FALSE(snap.verify());
    snap.warpArrival ^= 1;
    ASSERT_FALSE(snap.ctas.empty());
    ASSERT_FALSE(snap.ctas[0].regFile.empty());
    snap.ctas[0].regFile[0] ^= 1; // architectural state too
    EXPECT_FALSE(snap.verify());
    snap.ctas[0].regFile[0] ^= 1;
    EXPECT_TRUE(snap.verify());

    // A restore refuses a tampered snapshot...
    snap.mem.bytes[0] ^= 1;
    {
        mem::DeviceMemory replayMem(wl->memBytes());
        replayMem.restore(setupImage);
        sim::Gpu replay(cfg, replayMem);
        replay.beginReplay(trace, snap);
        EXPECT_THROW(wl->run(replay), sim::SnapshotCorrupt);
    }
    snap.mem.bytes[0] ^= 1;

    // ...and accepts the intact one, reproducing the golden run.
    mem::DeviceMemory replayMem(wl->memBytes());
    replayMem.restore(setupImage);
    sim::Gpu replay(cfg, replayMem);
    replay.beginReplay(trace, snap);
    wl->run(replay);
    EXPECT_EQ(replay.cycle(), totalCycles);
}

namespace {

/** Run one campaign and return (counts, records). */
std::pair<CampaignResult, std::vector<RunRecord>>
runCampaign(const char *wl, const CampaignSpec &spec, size_t threads)
{
    CampaignRunner runner(fastCard(), suite::factoryFor(wl), threads);
    std::vector<RunRecord> records;
    CampaignResult result = runner.run(spec, &records);
    return {result, records};
}

void
expectRecordsEqual(const std::vector<RunRecord> &a,
                   const std::vector<RunRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        EXPECT_EQ(a[i].runIdx, b[i].runIdx);
        EXPECT_EQ(a[i].plan.target, b[i].plan.target);
        EXPECT_EQ(a[i].plan.scope, b[i].plan.scope);
        EXPECT_EQ(a[i].plan.mode, b[i].plan.mode);
        EXPECT_EQ(a[i].plan.cycle, b[i].plan.cycle);
        EXPECT_EQ(a[i].plan.nBits, b[i].plan.nBits);
        EXPECT_EQ(a[i].plan.seed, b[i].plan.seed);
        EXPECT_EQ(a[i].injection.armed, b[i].injection.armed);
        EXPECT_EQ(a[i].injection.detail, b[i].injection.detail);
        EXPECT_EQ(a[i].verdict.outcome, b[i].verdict.outcome);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
    }
}

} // namespace

/**
 * The headline equivalence: a fast-forwarded campaign (snapshot
 * restore + early-convergence termination) must produce the exact
 * same RunRecord stream as the from-scratch campaign.
 */
class CampaignEquivalence : public ::testing::TestWithParam<const char *>
{};

TEST_P(CampaignEquivalence, FastForwardIsBitIdentical)
{
    const char *wl = GetParam();
    CampaignSpec slow;
    slow.kernelName = std::string(wl) == "VA" ? "vecadd" : "bfs_expand";
    slow.runs = 24;
    slow.seed = 5;
    slow.keepRecords = true;
    slow.fastForward = false;
    slow.earlyTermination = false;

    CampaignSpec fast = slow;
    fast.fastForward = true;
    fast.earlyTermination = true;

    auto [slowResult, slowRecords] = runCampaign(wl, slow, 1);
    auto [fastResult, fastRecords] = runCampaign(wl, fast, 1);

    EXPECT_EQ(slowResult.counts, fastResult.counts);
    expectRecordsEqual(slowRecords, fastRecords);
}

INSTANTIATE_TEST_SUITE_P(FastVsSlow, CampaignEquivalence,
                         ::testing::Values("VA", "BFS"));

TEST(CampaignEquivalence, TinySnapshotBudgetStillBitIdentical)
{
    // With only 2 snapshots most runs replay a long fault-free
    // stretch from a distant predecessor — results must not change.
    CampaignSpec slow;
    slow.kernelName = "srad1";
    slow.runs = 18;
    slow.seed = 11;
    slow.keepRecords = true;
    slow.fastForward = false;
    slow.earlyTermination = false;

    CampaignSpec fast = slow;
    fast.fastForward = true;
    fast.earlyTermination = true;
    fast.snapshotBudget = 2;

    auto [slowResult, slowRecords] = runCampaign("SRAD1", slow, 1);
    auto [fastResult, fastRecords] = runCampaign("SRAD1", fast, 1);

    EXPECT_EQ(slowResult.counts, fastResult.counts);
    expectRecordsEqual(slowRecords, fastRecords);
}

TEST(CampaignEquivalence, ParallelFastMatchesSerialFast)
{
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.runs = 24;
    spec.seed = 9;
    spec.keepRecords = true;

    auto [serialResult, serialRecords] = runCampaign("VA", spec, 1);
    auto [parallelResult, parallelRecords] = runCampaign("VA", spec, 4);

    EXPECT_EQ(serialResult.counts, parallelResult.counts);
    expectRecordsEqual(serialRecords, parallelRecords);
}
