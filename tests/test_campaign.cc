/**
 * @file
 * Campaign-controller tests: golden-run profiling, plan generation
 * within kernel windows, outcome accounting, reproducibility across
 * seeds and thread counts, and spec validation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fi/campaign.hh"
#include "sim/gpu_config.hh"
#include "suite/suite.hh"

using namespace gpufi;
using namespace gpufi::fi;

namespace {

sim::GpuConfig
fastCard()
{
    // RTX 2060 geometry shrunk to 4 SMs for test speed; structure
    // ratios stay realistic.
    sim::GpuConfig c = sim::makeRtx2060();
    c.numSms = 4;
    c.validate();
    return c;
}

} // namespace

TEST(CampaignResult, CountsAndRatios)
{
    CampaignResult r;
    for (int i = 0; i < 6; ++i)
        r.add(Outcome::Masked);
    for (int i = 0; i < 2; ++i)
        r.add(Outcome::Performance);
    r.add(Outcome::SDC);
    r.add(Outcome::Timeout);
    EXPECT_EQ(r.runs(), 10u);
    EXPECT_DOUBLE_EQ(r.ratio(Outcome::Masked), 0.6);
    EXPECT_DOUBLE_EQ(r.failureRatio(), 0.2); // SDC + Timeout
    EXPECT_EQ(r.maskedTotal(), 8u);
    EXPECT_DOUBLE_EQ(r.performanceShareOfMasked(), 0.25);
}

TEST(CampaignResult, MergeAddsCounts)
{
    CampaignResult a, b;
    a.add(Outcome::SDC);
    b.add(Outcome::SDC);
    b.add(Outcome::Crash);
    a.merge(b);
    EXPECT_EQ(a.count(Outcome::SDC), 2u);
    EXPECT_EQ(a.count(Outcome::Crash), 1u);
}

TEST(CampaignResult, EmptyIsSafe)
{
    // An empty campaign (drained before any run, or a resume with
    // nothing pending) must yield finite, zero ratios — never a
    // division by zero.
    CampaignResult r;
    EXPECT_EQ(r.runs(), 0u);
    EXPECT_EQ(r.validRuns(), 0u);
    EXPECT_EQ(r.toolFailures(), 0u);
    EXPECT_DOUBLE_EQ(r.ratio(Outcome::SDC), 0.0);
    EXPECT_DOUBLE_EQ(r.ratio(Outcome::ToolError), 0.0);
    EXPECT_DOUBLE_EQ(r.failureRatio(), 0.0);
    EXPECT_DOUBLE_EQ(r.performanceShareOfMasked(), 0.0);
}

TEST(CampaignResult, ToolOutcomesStayOutOfDeviceRatios)
{
    CampaignResult r;
    for (int i = 0; i < 6; ++i)
        r.add(Outcome::Masked);
    r.add(Outcome::SDC);
    r.add(Outcome::Crash);
    r.add(Outcome::ToolError);
    r.add(Outcome::ToolHang);
    EXPECT_EQ(r.runs(), 10u);
    EXPECT_EQ(r.toolFailures(), 2u);
    EXPECT_EQ(r.validRuns(), 8u);
    // Device ratios are over validRuns(); tool ratios over runs().
    EXPECT_DOUBLE_EQ(r.ratio(Outcome::Masked), 6.0 / 8.0);
    EXPECT_DOUBLE_EQ(r.failureRatio(), 2.0 / 8.0);
    EXPECT_DOUBLE_EQ(r.ratio(Outcome::ToolError), 1.0 / 10.0);
    EXPECT_TRUE(isToolOutcome(Outcome::ToolError));
    EXPECT_TRUE(isToolOutcome(Outcome::ToolHang));
    EXPECT_FALSE(isToolOutcome(Outcome::Timeout));
}

TEST(CampaignResult, AllToolFailuresHaveNoDeviceVerdict)
{
    CampaignResult r;
    r.add(Outcome::ToolError);
    r.add(Outcome::ToolHang);
    EXPECT_EQ(r.runs(), 2u);
    EXPECT_EQ(r.validRuns(), 0u);
    EXPECT_DOUBLE_EQ(r.failureRatio(), 0.0);
    EXPECT_DOUBLE_EQ(r.ratio(Outcome::SDC), 0.0);
    EXPECT_DOUBLE_EQ(r.ratio(Outcome::ToolHang), 0.5);
}

TEST(Outcome, NamesRoundTrip)
{
    for (size_t i = 0;
         i < static_cast<size_t>(Outcome::NUM_OUTCOMES); ++i) {
        auto o = static_cast<Outcome>(i);
        EXPECT_EQ(outcomeFromName(outcomeName(o)), o);
    }
    EXPECT_THROW(outcomeFromName("Fine"), FatalError);
}

TEST(GoldenRun, AggregatesInvocationsPerStaticKernel)
{
    // HotSpot launches one static kernel four times.
    CampaignRunner runner(fastCard(), suite::factoryFor("HS"), 1);
    const GoldenRun &g = runner.golden();
    ASSERT_EQ(g.kernels.size(), 1u);
    const KernelProfile &p = g.kernels[0];
    EXPECT_EQ(p.name, "hotspot");
    EXPECT_EQ(p.windows.size(), 4u);
    uint64_t sum = 0;
    for (auto &[s, e] : p.windows) {
        EXPECT_LT(s, e);
        sum += e - s;
    }
    EXPECT_EQ(sum, p.cycles);
    EXPECT_GT(p.occupancy, 0.0);
    EXPECT_GT(p.threadsMean, 0.0);
    EXPECT_GT(p.ctasMean, 0.0);
    EXPECT_EQ(p.regsPerThread, 24u);
    EXPECT_EQ(g.totalCycles, g.launches.back().endCycle);
}

TEST(GoldenRun, MultiKernelProfiles)
{
    CampaignRunner runner(fastCard(), suite::factoryFor("SRAD1"), 1);
    const GoldenRun &g = runner.golden();
    ASSERT_EQ(g.kernels.size(), 2u);
    EXPECT_EQ(g.profile("srad1").windows.size(), 2u);
    EXPECT_EQ(g.profile("srad2").windows.size(), 2u);
    EXPECT_THROW(g.profile("nonexistent"), FatalError);
}

TEST(GoldenRun, SummarizeSynthetic)
{
    std::vector<sim::LaunchStats> launches(3);
    launches[0].kernelName = "a";
    launches[0].startCycle = 0;
    launches[0].endCycle = 100;
    launches[0].occupancy = 0.5;
    launches[1].kernelName = "b";
    launches[1].startCycle = 100;
    launches[1].endCycle = 400;
    launches[1].occupancy = 1.0;
    launches[2].kernelName = "a";
    launches[2].startCycle = 400;
    launches[2].endCycle = 500;
    launches[2].occupancy = 0.7;
    GoldenRun g = summarizeGolden(launches, {1, 2, 3});
    EXPECT_EQ(g.totalCycles, 500u);
    EXPECT_EQ(g.output.size(), 3u);
    ASSERT_EQ(g.kernels.size(), 2u);
    EXPECT_EQ(g.profile("a").cycles, 200u);
    EXPECT_DOUBLE_EQ(g.profile("a").occupancy, 0.6); // cycle-weighted
    // App occupancy: (0.6*200 + 1.0*300) / 500.
    EXPECT_DOUBLE_EQ(g.appOccupancy, 0.84);
}

TEST(Campaign, CountsSumToRuns)
{
    CampaignRunner runner(fastCard(), suite::factoryFor("VA"), 1);
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.target = FaultTarget::RegisterFile;
    spec.runs = 40;
    CampaignResult r = runner.run(spec);
    EXPECT_EQ(r.runs(), 40u);
}

TEST(Campaign, SameSeedReproduces)
{
    CampaignRunner runner(fastCard(), suite::factoryFor("VA"), 1);
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.runs = 25;
    spec.seed = 7;
    CampaignResult a = runner.run(spec);
    CampaignResult b = runner.run(spec);
    EXPECT_EQ(a.counts, b.counts);
}

TEST(Campaign, DifferentSeedsUsuallyDiffer)
{
    CampaignRunner runner(fastCard(), suite::factoryFor("KM"), 1);
    CampaignSpec spec;
    spec.kernelName = "km_assign";
    spec.runs = 30;
    spec.seed = 1;
    CampaignResult a = runner.run(spec);
    spec.seed = 2;
    CampaignResult b = runner.run(spec);
    // Same statistics family but (with overwhelming probability)
    // different exact counts.
    EXPECT_NE(a.counts, b.counts);
}

TEST(Campaign, ParallelMatchesSerial)
{
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.runs = 24;
    spec.seed = 3;
    CampaignRunner serial(fastCard(), suite::factoryFor("VA"), 1);
    CampaignRunner parallel(fastCard(), suite::factoryFor("VA"), 2);
    EXPECT_EQ(serial.run(spec).counts, parallel.run(spec).counts);
}

TEST(Campaign, RecordsStayInsideKernelWindows)
{
    CampaignRunner runner(fastCard(), suite::factoryFor("SRAD1"), 1);
    const KernelProfile &prof = runner.golden().profile("srad2");
    CampaignSpec spec;
    spec.kernelName = "srad2";
    spec.runs = 30;
    spec.keepRecords = true;
    std::vector<RunRecord> records;
    runner.run(spec, &records);
    ASSERT_EQ(records.size(), 30u);
    for (const auto &r : records) {
        bool inside = false;
        for (auto &[s, e] : prof.windows)
            inside |= r.plan.cycle >= s && r.plan.cycle < e;
        EXPECT_TRUE(inside) << "cycle " << r.plan.cycle;
    }
}

TEST(Campaign, RegisterFaultsInKmeansCauseFailures)
{
    // KM is the paper's most vulnerable workload; 40 register-file
    // injections essentially always produce at least one failure.
    CampaignRunner runner(fastCard(), suite::factoryFor("KM"), 1);
    CampaignSpec spec;
    spec.kernelName = "km_assign";
    spec.runs = 40;
    CampaignResult r = runner.run(spec);
    EXPECT_GT(r.failureRatio(), 0.0);
    EXPECT_GT(r.count(Outcome::SDC) + r.count(Outcome::Crash) +
                  r.count(Outcome::Timeout),
              0u);
}

TEST(Campaign, L2FaultsOnVecaddMostlyMasked)
{
    // VA touches ~32 of the thousands of L2 lines: random L2 faults
    // are overwhelmingly masked.
    CampaignRunner runner(fastCard(), suite::factoryFor("VA"), 1);
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.target = FaultTarget::L2;
    spec.runs = 30;
    CampaignResult r = runner.run(spec);
    EXPECT_GE(r.ratio(Outcome::Masked), 0.8);
}

TEST(Campaign, SpecValidation)
{
    CampaignRunner runner(fastCard(), suite::factoryFor("VA"), 1);
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.runs = 0;
    EXPECT_THROW(runner.run(spec), FatalError);
    spec.runs = 1;
    spec.kernelName = "not_a_kernel";
    EXPECT_THROW(runner.run(spec), FatalError);
}

TEST(Campaign, TitanRejectsL1DataTarget)
{
    sim::GpuConfig titan = sim::makeGtxTitan();
    titan.numSms = 4;
    CampaignRunner runner(titan, suite::factoryFor("VA"), 1);
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.target = FaultTarget::L1Data;
    spec.runs = 1;
    EXPECT_THROW(runner.run(spec), FatalError);
}

TEST(Campaign, TripleBitRunsComplete)
{
    CampaignRunner runner(fastCard(), suite::factoryFor("VA"), 1);
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.nBits = 3;
    spec.runs = 20;
    CampaignResult r = runner.run(spec);
    EXPECT_EQ(r.runs(), 20u);
}
