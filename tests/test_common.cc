/**
 * @file
 * Common-substrate tests: logging/error idioms, RNG determinism and
 * statistical sanity, config parsing, accumulator math, the
 * statistical-fault-injection formulas, bit helpers and thread pool.
 */

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

using namespace gpufi;

// ---- logging ---------------------------------------------------------

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input %d", 7), FatalError);
    try {
        fatal("value = %d", 42);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value = 42"),
                  std::string::npos);
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("internal bug"), PanicError);
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(gpufi_assert(1 + 1 == 2));
    EXPECT_THROW(gpufi_assert(1 + 1 == 3), PanicError);
}

TEST(Logging, FormatHelper)
{
    EXPECT_EQ(detail::format("%s-%d", "x", 5), "x-5");
    EXPECT_EQ(detail::format("%08x", 0xabcu), "00000abc");
}

// ---- rng -------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.range(5, 9);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 9u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, DistinctProducesSortedUniqueValues)
{
    Rng r(9);
    auto v = r.distinct(100, 20);
    ASSERT_EQ(v.size(), 20u);
    for (size_t i = 1; i < v.size(); ++i) {
        ASSERT_LT(v[i - 1], v[i]);
        ASSERT_LT(v[i], 100u);
    }
}

TEST(Rng, DistinctFullRange)
{
    Rng r(13);
    auto v = r.distinct(8, 8);
    ASSERT_EQ(v.size(), 8u);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(Rng, ReseedReproduces)
{
    Rng r(77);
    uint64_t first = r();
    r.seed(77);
    EXPECT_EQ(r(), first);
}

// ---- config ----------------------------------------------------------

TEST(Config, GpgpusimOptionForm)
{
    auto cfg = ConfigFile::fromString(
        "-gpgpu_n_clusters 30\n"
        "-gpgpu_l2_size 3145728\n"
        "-gpufi_enable\n");
    EXPECT_EQ(cfg.getInt("gpgpu_n_clusters"), 30);
    EXPECT_EQ(cfg.getInt("gpgpu_l2_size"), 3145728);
    EXPECT_TRUE(cfg.getBool("gpufi_enable", false));
}

TEST(Config, AssignmentForm)
{
    auto cfg = ConfigFile::fromString(
        "runs = 3000\n"
        "raw_fit = 1.8e-6\n"
        "name = rtx2060  # trailing comment\n");
    EXPECT_EQ(cfg.getInt("runs"), 3000);
    EXPECT_DOUBLE_EQ(cfg.getDouble("raw_fit"), 1.8e-6);
    EXPECT_EQ(cfg.getString("name"), "rtx2060");
}

TEST(Config, DefaultsAndMissing)
{
    auto cfg = ConfigFile::fromString("a = 1\n");
    EXPECT_EQ(cfg.getInt("zzz", 5), 5);
    EXPECT_THROW(cfg.getInt("zzz"), FatalError);
    EXPECT_THROW(cfg.getString("zzz"), FatalError);
}

TEST(Config, MalformedValues)
{
    auto cfg = ConfigFile::fromString("a = hello\nb = 1x\n");
    EXPECT_THROW(cfg.getInt("a"), FatalError);
    EXPECT_THROW(cfg.getInt("b"), FatalError);
    EXPECT_THROW(cfg.getDouble("a"), FatalError);
    EXPECT_THROW(cfg.getBool("a", false), FatalError);
}

TEST(Config, SyntaxErrors)
{
    EXPECT_THROW(ConfigFile::fromString("just a bare line\n"),
                 FatalError);
}

TEST(Config, IntList)
{
    auto cfg = ConfigFile::fromString("cores = 3, 17, 99\n");
    auto v = cfg.getIntList("cores");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], 17);
}

TEST(Config, HexValues)
{
    auto cfg = ConfigFile::fromString("mask = 0xff\n");
    EXPECT_EQ(cfg.getInt("mask"), 0xff);
}

TEST(Config, SetAndSerialize)
{
    ConfigFile cfg;
    cfg.set("b", "2");
    cfg.set("a", "1");
    cfg.set("b", "3"); // overwrite keeps position
    EXPECT_EQ(cfg.toString(), "b = 3\na = 1\n");
    auto round = ConfigFile::fromString(cfg.toString());
    EXPECT_EQ(round.getInt("b"), 3);
}

// ---- stats -----------------------------------------------------------

TEST(RunningStat, Moments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsCombined)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = std::sin(i) * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StatFi, PaperSampleSize)
{
    // The paper: 3,000 injections give 99% confidence with <2% error
    // margin for realistically sized fault populations.
    double z = stat_fi::zValue(0.99);
    double n = stat_fi::sampleSize(1e9, z, 0.02);
    EXPECT_GT(n, 2900.0);
    EXPECT_LT(n, 4200.0);
    double e = stat_fi::errorMargin(1e9, 3000, z);
    EXPECT_GT(e, 0.015);
    EXPECT_LT(e, 0.025);
}

TEST(StatFi, MarginShrinksWithMoreRuns)
{
    double z = stat_fi::zValue(0.95);
    EXPECT_GT(stat_fi::errorMargin(1e8, 100, z),
              stat_fi::errorMargin(1e8, 10000, z));
}

TEST(StatFi, UnknownConfidenceIsFatal)
{
    EXPECT_THROW(stat_fi::zValue(0.5), FatalError);
}

// ---- bitops ----------------------------------------------------------

TEST(BitOps, Flip32And64)
{
    EXPECT_EQ(flipBit32(0, 0), 1u);
    EXPECT_EQ(flipBit32(0xff, 7), 0x7fu);
    EXPECT_EQ(flipBit64(0, 63), 1ull << 63);
}

TEST(BitOps, BufferBits)
{
    uint8_t buf[4] = {0, 0, 0, 0};
    flipBitInBuffer(buf, 0);
    flipBitInBuffer(buf, 9);
    flipBitInBuffer(buf, 31);
    EXPECT_EQ(buf[0], 1);
    EXPECT_EQ(buf[1], 2);
    EXPECT_EQ(buf[3], 0x80);
    EXPECT_TRUE(testBitInBuffer(buf, 9));
    EXPECT_FALSE(testBitInBuffer(buf, 10));
}

TEST(BitOps, PowersAndAlignment)
{
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
    EXPECT_EQ(log2Exact(128), 7u);
    EXPECT_EQ(alignUp(5, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(divCeil(9, 4), 3u);
}

TEST(BitOps, FloatBitCasts)
{
    EXPECT_EQ(floatToBits(1.0f), 0x3f800000u);
    EXPECT_EQ(bitsToFloat(0x40000000u), 2.0f);
    float nan = bitsToFloat(0x7fc00000u);
    EXPECT_TRUE(std::isnan(nan));
}

// ---- thread pool -----------------------------------------------------

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> n{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&n] { ++n; });
    pool.wait();
    EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndices)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(64, [&](size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> n{0};
    pool.submit([&n] { ++n; });
    pool.wait();
    pool.submit([&n] { ++n; });
    pool.wait();
    EXPECT_EQ(n.load(), 2);
}

TEST(ThreadPool, SingleWorkerIsSerial)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}
