/**
 * @file
 * CFG construction and immediate post-dominator tests — the analysis
 * behind SIMT reconvergence points.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/cfg.hh"

using namespace gpufi;
using namespace gpufi::isa;

namespace {

Kernel
k(const std::string &body)
{
    return assembleKernel(".kernel t\n.reg 8\n" + body);
}

} // namespace

TEST(Cfg, StraightLineIsOneBlock)
{
    Kernel kern = k("    mov r0, 1\n    add r0, r0, 1\n    exit\n");
    Cfg cfg = buildCfg(kern);
    ASSERT_EQ(cfg.blocks.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].first, 0);
    EXPECT_EQ(cfg.blocks[0].last, 2);
    EXPECT_TRUE(cfg.blocks[0].succs.empty());
}

TEST(Cfg, IfThenElseShape)
{
    Kernel kern = k(
        "    brz r0, else\n"       // 0
        "    mov r1, 1\n"          // 1
        "    bra join\n"           // 2
        "else:\n"
        "    mov r1, 2\n"          // 3
        "join:\n"
        "    exit\n");             // 4
    Cfg cfg = buildCfg(kern);
    ASSERT_EQ(cfg.blocks.size(), 4u);
    // Block 0 = {0}, block 1 = {1,2}, block 2 = {3}, block 3 = {4}.
    EXPECT_EQ(cfg.blocks[0].succs, (std::vector<int>{1, 2}));
    EXPECT_EQ(cfg.blocks[1].succs, (std::vector<int>{3}));
    EXPECT_EQ(cfg.blocks[2].succs, (std::vector<int>{3}));
    EXPECT_TRUE(cfg.blocks[3].succs.empty());
    EXPECT_EQ(cfg.blockOf(2), 1);
    EXPECT_EQ(cfg.blockOf(4), 3);

    std::vector<int> ipdom = immediatePostDominators(cfg);
    EXPECT_EQ(ipdom[0], 3); // branch reconverges at the join block
    EXPECT_EQ(ipdom[1], 3);
    EXPECT_EQ(ipdom[2], 3);
    EXPECT_EQ(ipdom[3], -1); // exit post-dominated by virtual exit only

    // The conditional branch instruction carries the join pc.
    EXPECT_EQ(kern.code[0].reconvergePc, 4);
}

TEST(Cfg, LoopBackEdge)
{
    Kernel kern = k(
        "top:\n"
        "    sub r0, r0, 1\n"      // 0
        "    brnz r0, top\n"       // 1
        "    exit\n");             // 2
    Cfg cfg = buildCfg(kern);
    ASSERT_EQ(cfg.blocks.size(), 2u);
    EXPECT_EQ(cfg.blocks[0].succs, (std::vector<int>{0, 1}));
    // The loop branch reconverges at the loop exit.
    EXPECT_EQ(kern.code[1].reconvergePc, 2);
}

TEST(Cfg, BranchWhereBothPathsExitSeparately)
{
    Kernel kern = k(
        "    brz r0, other\n"      // 0
        "    exit\n"               // 1
        "other:\n"
        "    exit\n");             // 2
    // No common post-dominator except the virtual exit.
    EXPECT_EQ(kern.code[0].reconvergePc, -1);
}

TEST(Cfg, NestedIfsHaveNestedReconvergence)
{
    Kernel kern = k(
        "    brz r0, outer_else\n" // 0
        "    brz r1, inner_else\n" // 1
        "    mov r2, 1\n"          // 2
        "    bra inner_join\n"     // 3
        "inner_else:\n"
        "    mov r2, 2\n"          // 4
        "inner_join:\n"
        "    mov r3, 3\n"          // 5
        "    bra outer_join\n"     // 6
        "outer_else:\n"
        "    mov r3, 4\n"          // 7
        "outer_join:\n"
        "    exit\n");             // 8
    EXPECT_EQ(kern.code[0].reconvergePc, 8);
    EXPECT_EQ(kern.code[1].reconvergePc, 5);
}

TEST(Cfg, CondBranchDirectlyToNextInstruction)
{
    // Degenerate: both sides of the branch go to pc+1.
    Kernel kern = k(
        "    brz r0, next\n"
        "next:\n"
        "    exit\n");
    EXPECT_EQ(kern.code[0].reconvergePc, 1);
}

TEST(Cfg, UnreachableCodeAfterBra)
{
    Kernel kern = k(
        "    bra away\n"
        "    mov r0, 1\n"          // unreachable
        "away:\n"
        "    exit\n");
    Cfg cfg = buildCfg(kern);
    // Unreachable block exists but has the fall-through successor.
    EXPECT_EQ(cfg.blocks.size(), 3u);
}

TEST(Cfg, DiamondWithSharedTail)
{
    Kernel kern = k(
        "    brz r0, b\n"          // 0
        "a:  add r1, r1, 1\n"      // 1
        "    bra tail\n"           // 2
        "b:  add r1, r1, 2\n"      // 3
        "tail:\n"
        "    add r1, r1, 3\n"      // 4
        "    brnz r1, a\n"         // 5: loop back into one arm
        "    exit\n");             // 6
    // Reconvergence of the first branch is the tail block (pc 4).
    EXPECT_EQ(kern.code[0].reconvergePc, 4);
    // The back-branch reconverges at exit.
    EXPECT_EQ(kern.code[5].reconvergePc, 6);
}

TEST(Cfg, BlockOfOutOfRange)
{
    Kernel kern = k("    exit\n");
    Cfg cfg = buildCfg(kern);
    EXPECT_EQ(cfg.blockOf(-1), -1);
    EXPECT_EQ(cfg.blockOf(100), -1);
}

TEST(Cfg, PredsMatchSuccs)
{
    Kernel kern = k(
        "    brz r0, e\n"
        "    nop\n"
        "e:  exit\n");
    Cfg cfg = buildCfg(kern);
    for (size_t b = 0; b < cfg.blocks.size(); ++b)
        for (int s : cfg.blocks[b].succs) {
            const auto &preds =
                cfg.blocks[static_cast<size_t>(s)].preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(),
                                static_cast<int>(b)),
                      preds.end());
        }
}
