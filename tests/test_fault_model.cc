/**
 * @file
 * Fault-model diversity tests (DESIGN.md §16): the --fault-model
 * vocabulary and spec grammar, the v3 model=/at= run-log keys, the
 * fingerprint/digest backward-compatibility rule (non-default-only
 * mixing), twin-run equivalence gates for the re-assertion hook's
 * composition with the execution fast paths, and the end-to-end
 * journal -> resume -> shard-merge pipeline for permanent and
 * intermittent campaigns.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fi/campaign.hh"
#include "fi/fault.hh"
#include "fi/journal.hh"
#include "fi/report_log.hh"
#include "fi/shard.hh"
#include "sim_test_util.hh"

using namespace gpufi;
using namespace gpufi::fi;
using namespace gpufi_test;

namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

TwinArm
modelArm(FaultTarget target, FaultModel model, uint32_t runs,
         uint32_t period = 0, uint32_t duty = 0)
{
    TwinArm arm;
    arm.spec.kernelName = "vecadd";
    arm.spec.target = target;
    arm.spec.runs = runs;
    arm.spec.seed = 99;
    arm.spec.model = model;
    arm.spec.period = period;
    arm.spec.duty = duty;
    return arm;
}

} // namespace

// ---- Vocabulary and spec grammar -----------------------------------

TEST(FaultModel, NamesRoundTrip)
{
    for (size_t i = 0;
         i < static_cast<size_t>(FaultModel::NUM_MODELS); ++i) {
        auto m = static_cast<FaultModel>(i);
        FaultModel back;
        ASSERT_TRUE(tryModelFromName(modelName(m), back))
            << modelName(m);
        EXPECT_EQ(back, m);
        EXPECT_STRNE(modelDescription(m), "");
    }
    FaultModel out;
    EXPECT_FALSE(tryModelFromName("bogus", out));
    EXPECT_FALSE(tryModelFromName("", out));
}

TEST(FaultModel, SpecParsesAndFormats)
{
    FaultModel m;
    uint32_t p = 0, d = 0;
    parseFaultModelSpec("transient", m, p, d);
    EXPECT_EQ(m, FaultModel::Transient);
    EXPECT_EQ(p, 0u);
    EXPECT_EQ(d, 0u);

    parseFaultModelSpec("stuck_at_1", m, p, d);
    EXPECT_EQ(m, FaultModel::StuckAt1);
    EXPECT_EQ(formatFaultModelSpec(m, p, d), "stuck_at_1");

    // Bare intermittent gets the documented 64/8 defaults.
    parseFaultModelSpec("intermittent", m, p, d);
    EXPECT_EQ(m, FaultModel::Intermittent);
    EXPECT_EQ(p, 64u);
    EXPECT_EQ(d, 8u);

    parseFaultModelSpec("intermittent:32/4", m, p, d);
    EXPECT_EQ(p, 32u);
    EXPECT_EQ(d, 4u);
    EXPECT_EQ(formatFaultModelSpec(m, p, d), "intermittent:32/4");

    // Unknown names, degenerate windows, and a :P/D suffix on a
    // non-intermittent model are all vocabulary errors.
    EXPECT_THROW(parseFaultModelSpec("bogus", m, p, d), FatalError);
    EXPECT_THROW(parseFaultModelSpec("intermittent:0/0", m, p, d),
                 FatalError);
    EXPECT_THROW(parseFaultModelSpec("intermittent:4/9", m, p, d),
                 FatalError);
    EXPECT_THROW(parseFaultModelSpec("stuck_at_0:4/2", m, p, d),
                 FatalError);
}

TEST(FaultModel, ReassertAndSlowPathPredicates)
{
    EXPECT_FALSE(modelReasserts(FaultModel::Transient));
    EXPECT_TRUE(modelReasserts(FaultModel::StuckAt0));
    EXPECT_TRUE(modelReasserts(FaultModel::StuckAt1));
    EXPECT_TRUE(modelReasserts(FaultModel::Intermittent));
    EXPECT_FALSE(modelReasserts(FaultModel::AdjacentBits));
    EXPECT_FALSE(modelReasserts(FaultModel::AdjacentRows));
    EXPECT_FALSE(modelReasserts(FaultModel::SameWay));

    // Only from-power-on faults invalidate the pioneer prefix; an
    // intermittent fault has a fault-free prefix and may fast-forward.
    EXPECT_FALSE(modelNeedsSlowPath(FaultModel::Transient));
    EXPECT_TRUE(modelNeedsSlowPath(FaultModel::StuckAt0));
    EXPECT_TRUE(modelNeedsSlowPath(FaultModel::StuckAt1));
    EXPECT_FALSE(modelNeedsSlowPath(FaultModel::Intermittent));
    EXPECT_FALSE(modelNeedsSlowPath(FaultModel::AdjacentBits));
}

// ---- Run-log grammar v3 --------------------------------------------

TEST(FaultModel, RunRecordV3RoundTrip)
{
    RunRecord r;
    r.runIdx = 7;
    r.plan.cycle = 123;
    r.plan.seed = 456;
    r.plan.model = FaultModel::Intermittent;
    r.plan.period = 32;
    r.plan.duty = 4;
    r.plan.exact = true;
    r.plan.exactEntry = 9;
    r.plan.exactBit = 17;
    r.plan.exactVictim = 2;
    r.injection.armed = true;
    r.cycles = 999;
    r.verdict.outcome = Outcome::SDC;

    std::string line = formatRunRecord(r);
    EXPECT_NE(line.find("model=intermittent:32/4"), std::string::npos)
        << line;
    EXPECT_NE(line.find("at=9:17:2"), std::string::npos) << line;

    RunRecord back = parseRunRecord(line);
    EXPECT_EQ(back.plan.model, FaultModel::Intermittent);
    EXPECT_EQ(back.plan.period, 32u);
    EXPECT_EQ(back.plan.duty, 4u);
    EXPECT_TRUE(back.plan.exact);
    EXPECT_EQ(back.plan.exactEntry, 9u);
    EXPECT_EQ(back.plan.exactBit, 17u);
    EXPECT_EQ(back.plan.exactVictim, 2u);
    // Full-line round trip: re-formatting the parse is byte-stable.
    EXPECT_EQ(formatRunRecord(back), line);
}

TEST(FaultModel, TransientRecordsKeepV1Grammar)
{
    // A default-model, non-attack record must not emit model=/at= —
    // its bytes are exactly what a pre-model build wrote (the
    // golden-log fixtures pin this against the real injector; this
    // pins the formatter in isolation).
    RunRecord r;
    r.plan.cycle = 5;
    r.verdict.outcome = Outcome::Masked;
    std::string line = formatRunRecord(r);
    EXPECT_EQ(line.find("model="), std::string::npos) << line;
    EXPECT_EQ(line.find("at="), std::string::npos) << line;

    // And a v1 line parses to transient defaults.
    RunRecord back = parseRunRecord(
        "run=3 target=l2 scope=thread mode=same cycle=11 bits=2 "
        "seed=17 armed=1 cycles=400 outcome=Crash");
    EXPECT_EQ(back.plan.model, FaultModel::Transient);
    EXPECT_FALSE(back.plan.exact);
}

TEST(FaultModel, MalformedAtCoordinatesRejected)
{
    RunRecord out;
    std::string err;
    EXPECT_FALSE(tryParseRunRecord(
        "run=0 target=l2 scope=thread mode=same cycle=1 bits=1 "
        "seed=1 armed=1 cycles=4 outcome=Masked at=3:4", out, &err));
    EXPECT_FALSE(tryParseRunRecord(
        "run=0 target=l2 scope=thread mode=same cycle=1 bits=1 "
        "seed=1 armed=1 cycles=4 outcome=Masked model=bogus", out,
        &err));
}

// ---- Fingerprint / digest backward compatibility -------------------

TEST(FaultModel, FingerprintMixesOnlyNonDefaultModels)
{
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.seed = 4;
    const uint64_t base = campaignFingerprint(spec);

    // Explicit transient is the default: same fingerprint, so every
    // pre-model journal still resumes.
    CampaignSpec t = spec;
    t.model = FaultModel::Transient;
    EXPECT_EQ(campaignFingerprint(t), base);

    CampaignSpec s = spec;
    s.model = FaultModel::StuckAt1;
    EXPECT_NE(campaignFingerprint(s), base);

    CampaignSpec i1 = spec, i2 = spec;
    i1.model = i2.model = FaultModel::Intermittent;
    i1.period = 64;
    i1.duty = 8;
    i2.period = 32;
    i2.duty = 8;
    EXPECT_NE(campaignFingerprint(i1), campaignFingerprint(i2));

    CampaignSpec a = spec;
    a.attack = true;
    a.atCycle = 100;
    EXPECT_NE(campaignFingerprint(a), base);
}

TEST(FaultModel, PlanDigestMixesOnlyNonDefaultModels)
{
    std::vector<FaultPlan> plans(3);
    for (size_t i = 0; i < plans.size(); ++i) {
        plans[i].cycle = 10 * i;
        plans[i].seed = i + 1;
    }
    const uint64_t base = planVectorDigest(plans);

    std::vector<FaultPlan> expl = plans;
    for (auto &p : expl)
        p.model = FaultModel::Transient;
    EXPECT_EQ(planVectorDigest(expl), base);

    std::vector<FaultPlan> stuck = plans;
    for (auto &p : stuck)
        p.model = FaultModel::StuckAt0;
    EXPECT_NE(planVectorDigest(stuck), base);

    std::vector<FaultPlan> atk = plans;
    atk[1].exact = true;
    atk[1].exactBit = 3;
    EXPECT_NE(planVectorDigest(atk), base);
}

// ---- CampaignResult per-model algebra ------------------------------

TEST(FaultModel, ResultTracksPerModelTallies)
{
    CampaignResult a;
    RunVerdict sdc;
    sdc.outcome = Outcome::SDC;
    RunVerdict masked;
    masked.outcome = Outcome::Masked;

    a.add(sdc, FaultModel::StuckAt1);
    a.add(masked, FaultModel::StuckAt1);
    a.add(masked, FaultModel::Transient);

    EXPECT_EQ(a.modelRuns(FaultModel::StuckAt1), 2u);
    EXPECT_EQ(a.modelCount(FaultModel::StuckAt1, Outcome::SDC), 1u);
    EXPECT_EQ(a.modelRuns(FaultModel::Transient), 1u);
    EXPECT_EQ(a.modelRuns(FaultModel::Intermittent), 0u);
    EXPECT_EQ(a.runs(), 3u);

    CampaignResult b;
    b.add(sdc, FaultModel::Intermittent);
    a.merge(b);
    EXPECT_EQ(a.modelRuns(FaultModel::Intermittent), 1u);
    EXPECT_EQ(a.modelCount(FaultModel::Intermittent, Outcome::SDC),
              1u);
    EXPECT_EQ(a.runs(), 4u);

    // The legacy adds leave the per-model surface untouched.
    CampaignResult c;
    c.add(Outcome::Crash);
    c.add(sdc);
    for (size_t m = 0;
         m < static_cast<size_t>(FaultModel::NUM_MODELS); ++m)
        EXPECT_EQ(c.modelRuns(static_cast<FaultModel>(m)), 0u);
}

// ---- Twin-run gates: re-assertion vs the execution fast paths ------

TEST(FaultModel, ExplicitTransientIsByteIdenticalToDefault)
{
    TwinArm ref;
    ref.spec.kernelName = "vecadd";
    ref.spec.runs = 12;
    ref.spec.seed = 21;
    TwinArm var = ref;
    var.spec.model = FaultModel::Transient;
    expectTwinEquivalence(ref, var, "explicit transient == default");
}

TEST(FaultModel, StuckAtIgnoresFastForwardAndEarlyTermination)
{
    // The planner must force the slow path for stuck-at, so leaving
    // fastForward on is byte-identical to disabling it; likewise the
    // convergence check must never arm for a re-asserting model.
    TwinArm ref =
        modelArm(FaultTarget::RegisterFile, FaultModel::StuckAt1, 8);
    TwinArm var = ref;
    var.spec.fastForward = false;
    var.spec.earlyTermination = false;
    expectTwinEquivalence(ref, var,
                          "stuck_at_1 ff/earlyTerm neutrality");
}

TEST(FaultModel, StuckAtFastpathEquivalence)
{
    // The per-cycle re-assertion (reference interpreter) vs the
    // catch-up force + standing-fault wake events (idle-skip fast
    // path) must be bit-identical.
    TwinArm ref =
        modelArm(FaultTarget::WarpCtrl, FaultModel::StuckAt1, 8);
    TwinArm var = ref;
    var.card.setFastPath(false);
    var.spec.deltaSnapshots = false;
    expectTwinEquivalence(ref, var, "stuck_at_1 fastpath twin");
}

TEST(FaultModel, IntermittentFastForwardEquivalence)
{
    // An intermittent fault has a fault-free prefix, so snapshot
    // fast-forward stays legal; restored-state runs must match
    // from-scratch runs bit for bit.
    TwinArm ref = modelArm(FaultTarget::RegisterFile,
                           FaultModel::Intermittent, 8, 16, 4);
    TwinArm var = ref;
    var.spec.fastForward = false;
    expectTwinEquivalence(ref, var, "intermittent ff twin");
}

TEST(FaultModel, IntermittentFastpathEquivalence)
{
    TwinArm ref = modelArm(FaultTarget::RegisterFile,
                           FaultModel::Intermittent, 8, 16, 4);
    TwinArm var = ref;
    var.card.setFastPath(false);
    var.spec.deltaSnapshots = false;
    expectTwinEquivalence(ref, var, "intermittent fastpath twin");
}

TEST(FaultModel, AttackPlansAreThreadCountInvariant)
{
    TwinArm ref;
    ref.spec.kernelName = "vecadd";
    ref.spec.runs = 6;
    ref.spec.seed = 5;
    ref.spec.attack = true;
    ref.spec.atCycle = 200;
    ref.spec.atEntry = 3;
    ref.spec.atBit = 7;
    ref.spec.atVictim = 1;
    TwinArm var = ref;
    var.threads = 3;
    TwinOutcome a = runTwinArm(ref);
    TwinOutcome b = runTwinArm(var);
    expectTwinsIdentical(a, b, "attack thread-count twin");
    // Exact coordinates: every run strikes the same victim/bit, so
    // every record carries identical at= coordinates and outcome.
    ASSERT_FALSE(a.records.empty());
    for (const auto &r : a.records) {
        EXPECT_TRUE(r.plan.exact);
        EXPECT_EQ(r.plan.cycle, 200u);
        EXPECT_EQ(r.verdict.outcome, a.records[0].verdict.outcome);
    }
}

// ---- End-to-end: journal -> resume -> shard merge -> tallies -------

namespace {

/** Run @p spec sharded 2-ways with journals, then merge. */
void
shardedPipeline(const CampaignSpec &base, const std::string &tag,
                FaultModel model)
{
    sim::GpuConfig card = campaignCard();
    CampaignRunner runner(card, suite::factoryFor("VA"), 1);

    // The unsharded reference result.
    CampaignSpec ref = base;
    std::vector<RunRecord> refRecords;
    CampaignResult whole = runner.run(ref, &refRecords);

    // Two shard journals...
    std::vector<std::string> paths;
    for (uint32_t s = 0; s < 2; ++s) {
        CampaignSpec shard = base;
        shard.shardIndex = s;
        shard.shardCount = 2;
        std::string path = tmpPath("fm_" + tag + "_s" +
                                   std::to_string(s) + ".jnl");
        std::remove(path.c_str());
        RunJournal journal;
        journal.open(path);
        runner.run(shard, nullptr, &journal);
        paths.push_back(path);
    }

    // ... a resume of shard 0 from its complete journal must redo
    // nothing and reproduce the shard's aggregate (with tallies).
    {
        CampaignSpec shard = base;
        shard.shardIndex = 0;
        shard.shardCount = 2;
        JournalContents prior = loadJournal(paths[0]);
        uint64_t fp = campaignFingerprint(shard);
        ASSERT_TRUE(prior.byCampaign.count(fp));
        RunJournal journal;
        journal.open(paths[0]);
        CampaignResult resumed = runner.run(
            shard, nullptr, &journal, &prior.byCampaign.at(fp));
        const ShardCoord coord{0, 2};
        EXPECT_EQ(resumed.modelRuns(model),
                  coord.ownedRuns(base.runs))
            << tag;
    }

    // ... and the merge equals the single-process campaign, with the
    // per-model tallies carried through the merged records.
    MergeReport report;
    std::string err;
    ASSERT_TRUE(mergeShardJournals(paths, report, &err)) << err;
    ASSERT_EQ(report.campaigns.size(), 1u);
    const MergedCampaign &mc = report.campaigns[0];
    EXPECT_EQ(mc.result.counts, whole.counts) << tag;
    EXPECT_EQ(mc.result.modelCounts, whole.modelCounts) << tag;
    EXPECT_EQ(mc.result.modelRuns(model), base.runs) << tag;

    std::string mergedLines;
    for (const auto &r : mc.records)
        mergedLines += formatRunRecord(r) + "\n";
    std::string refLines;
    for (const auto &r : refRecords)
        refLines += formatRunRecord(r) + "\n";
    EXPECT_EQ(mergedLines, refLines) << tag;
}

} // namespace

TEST(FaultModel, StuckAtEndToEndPipeline)
{
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.target = FaultTarget::WarpCtrl;
    spec.runs = 6;
    spec.seed = 31;
    spec.keepRecords = true;
    spec.model = FaultModel::StuckAt1;
    shardedPipeline(spec, "sa1", FaultModel::StuckAt1);
}

TEST(FaultModel, IntermittentEndToEndPipeline)
{
    CampaignSpec spec;
    spec.kernelName = "vecadd";
    spec.target = FaultTarget::RegisterFile;
    spec.runs = 6;
    spec.seed = 32;
    spec.keepRecords = true;
    spec.model = FaultModel::Intermittent;
    spec.period = 16;
    spec.duty = 4;
    shardedPipeline(spec, "int", FaultModel::Intermittent);
}
