/**
 * @file
 * DeviceMemory, SharedMemory, DRAM-channel and L2-subsystem tests.
 */

#include <gtest/gtest.h>

#include "mem/backing.hh"
#include "mem/dram.hh"
#include "mem/l2_subsystem.hh"
#include "mem/shared_memory.hh"

using namespace gpufi;
using namespace gpufi::mem;

TEST(DeviceMemory, AllocateAlignsAndAdvances)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(100);
    Addr b = m.allocate(100);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(a, m.base());
}

TEST(DeviceMemory, ReadWriteRoundTrip)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(16);
    m.write32(a, 0x12345678);
    m.write32(a + 4, 0x9abcdef0);
    EXPECT_EQ(m.read32(a), 0x12345678u);
    EXPECT_EQ(m.read32(a + 4), 0x9abcdef0u);
}

TEST(DeviceMemory, OutOfBoundsFaults)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(16);
    EXPECT_THROW(m.read32(0), DeviceFault);        // null guard
    EXPECT_THROW(m.read32(1u << 20), DeviceFault); // beyond capacity
    uint32_t v = 1;
    EXPECT_THROW(m.write((1u << 20) - 2, &v, 4),
                 DeviceFault); // straddles capacity
    // Between allocations and the capacity the heap is mapped, as on
    // a real GPU context: no fault, just untouched zeros.
    EXPECT_EQ(m.read32(a + (1u << 19)), 0u);
}

TEST(DeviceMemory, ValidRange)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(16);
    EXPECT_TRUE(m.valid(a, 16));
    EXPECT_TRUE(m.valid(a, 17)); // mapped heap past the allocation
    EXPECT_FALSE(m.valid(0, 1));
    EXPECT_FALSE(m.valid(1u << 20, 1));
    EXPECT_FALSE(m.valid(~0ull, 4)); // overflow guarded
}

TEST(DeviceMemory, ReadClampedZeroFills)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(8);
    m.write32(a, 0xaabbccdd);
    m.write32(a + 4, 0x11223344);
    uint8_t buf[16];
    m.readClamped(a, buf, 16); // past brk: zero fill
    uint32_t w0, w3;
    __builtin_memcpy(&w0, buf, 4);
    __builtin_memcpy(&w3, buf + 12, 4);
    EXPECT_EQ(w0, 0xaabbccddu);
    EXPECT_EQ(w3, 0u);
}

TEST(DeviceMemory, ExhaustionIsFatal)
{
    DeviceMemory m(1u << 17);
    EXPECT_THROW(m.allocate(1u << 20), FatalError);
}

TEST(DeviceMemory, ResetClearsState)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(16);
    m.write32(a, 7);
    m.reset();
    Addr b = m.allocate(16);
    EXPECT_EQ(a, b); // allocator restarted
    EXPECT_EQ(m.read32(b), 0u);
}

TEST(DeviceMemory, TextureBinding)
{
    DeviceMemory m(1u << 20);
    Addr t = m.allocate(64);
    Addr o = m.allocate(64);
    m.bindTexture(t, 64);
    EXPECT_TRUE(m.inTexture(t, 4));
    EXPECT_TRUE(m.inTexture(t + 60, 4));
    EXPECT_FALSE(m.inTexture(t + 61, 4));
    EXPECT_FALSE(m.inTexture(o, 4));
}

TEST(DeviceMemory, FlipBit)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(4);
    m.write32(a, 0);
    m.flipBit(a, 3);
    EXPECT_EQ(m.read32(a), 8u);
    m.flipBit(a, 3);
    EXPECT_EQ(m.read32(a), 0u);
    m.flipBit(1, 0); // outside live data: silently masked
}

TEST(DeviceMemory, CopyLineFaultsOnUnmappedTarget)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(256);
    EXPECT_THROW(m.copyLine(a, 1u << 21, 128), DeviceFault);
    // Within the mapped heap the copy lands (wrong-address data).
    EXPECT_NO_THROW(m.copyLine(a, a + (1u << 19), 128));
}

TEST(SharedMemory, ReadWriteAndBounds)
{
    SharedMemory s(256);
    s.write32(0, 11);
    s.write32(252, 22);
    EXPECT_EQ(s.read32(0), 11u);
    EXPECT_EQ(s.read32(252), 22u);
    EXPECT_THROW(s.read32(253), DeviceFault);
    EXPECT_THROW(s.write32(256, 1), DeviceFault);
}

TEST(SharedMemory, FlipBit)
{
    SharedMemory s(64);
    s.flipBit(9); // byte 1, bit 1
    EXPECT_EQ(s.read32(0), 0x200u);
}

TEST(DramChannel, QueueingDelays)
{
    DramChannel ch(100, 16);
    EXPECT_EQ(ch.access(0), 100u);       // idle: pure latency
    EXPECT_EQ(ch.access(0), 116u);       // queued behind first
    EXPECT_EQ(ch.access(0), 132u);
    EXPECT_EQ(ch.access(1000), 100u);    // idle again later
    EXPECT_EQ(ch.requests(), 4u);
}

namespace {

L2Params
smallL2()
{
    L2Params p;
    p.totalSize = 4 * 1024;
    p.lineSize = 128;
    p.assoc = 2;
    p.numPartitions = 2;
    p.hitLatency = 10;
    p.dramLatency = 50;
    p.dramServiceInterval = 8;
    return p;
}

} // namespace

TEST(L2Subsystem, AddressesInterleaveAcrossPartitions)
{
    DeviceMemory m(1u << 20);
    L2Subsystem l2(smallL2(), &m);
    EXPECT_EQ(l2.partitionOf(0), 0u);
    EXPECT_EQ(l2.partitionOf(128), 1u);
    EXPECT_EQ(l2.partitionOf(256), 0u);
}

TEST(L2Subsystem, MissThenHitLatency)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(4096);
    L2Subsystem l2(smallL2(), &m);
    uint8_t buf[128];
    m.readClamped(a, buf, 128);
    uint32_t lat1 = l2.read(a, 128, buf, 0);
    uint32_t lat2 = l2.read(a, 128, buf, 100);
    EXPECT_GT(lat1, lat2);        // miss costs DRAM
    EXPECT_EQ(lat2, 10u);         // hit latency
}

TEST(L2Subsystem, FlatLineIndexReachesEveryBank)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(8192);
    L2Subsystem l2(smallL2(), &m);
    EXPECT_EQ(l2.numLines(), 32u);
    EXPECT_EQ(l2.bitsPerLine(), 128u * 8 + 57);
    uint8_t buf[128];
    // Warm both banks.
    l2.read(a, 128, buf, 0);         // bank 0
    l2.read(a + 128, 128, buf, 0);   // bank 1
    // Some flat index in [0,16) covers bank 0, [16,32) bank 1.
    int armed = 0;
    for (uint32_t i = 0; i < l2.numLines(); ++i)
        if (l2.injectBit(i, 0))
            ++armed;
    EXPECT_EQ(armed, 2); // exactly the two valid lines
}

TEST(L2Subsystem, StatsAggregateAcrossBanks)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(4096);
    L2Subsystem l2(smallL2(), &m);
    uint8_t buf[128];
    l2.read(a, 128, buf, 0);
    l2.read(a + 128, 128, buf, 0);
    l2.write(a + 256, 0);
    CacheStats s = l2.stats();
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.readMisses, 2u);
    EXPECT_EQ(s.writes, 1u);
}

TEST(L2Subsystem, HooksFlipThroughRead)
{
    DeviceMemory m(1u << 20);
    Addr a = m.allocate(4096);
    m.write32(a, 0);
    L2Subsystem l2(smallL2(), &m);
    uint8_t buf[128] = {};
    l2.read(a, 128, buf, 0); // fill
    // Find the valid flat line and hook data bit 1.
    for (uint32_t i = 0; i < l2.numLines(); ++i)
        l2.injectBit(i, 57 + 1);
    m.readClamped(a, buf, 128);
    l2.read(a, 128, buf, 10); // hit applies the hook
    EXPECT_EQ(buf[0], 0x02);
}
