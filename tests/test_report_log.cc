/**
 * @file
 * Run-log serialization and parser tests (the paper's "parser of the
 * logged information" module).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fi/report_log.hh"

using namespace gpufi;
using namespace gpufi::fi;

namespace {

RunRecord
sample()
{
    RunRecord r;
    r.runIdx = 17;
    r.plan.target = FaultTarget::L1Data;
    r.plan.scope = FaultScope::Warp;
    r.plan.cycle = 123456;
    r.plan.nBits = 3;
    r.plan.seed = 0xdeadbeef;
    r.injection.armed = true;
    r.injection.detail = "core2 line 14";
    r.verdict.outcome = Outcome::SDC;
    r.cycles = 98765;
    return r;
}

} // namespace

TEST(ReportLog, FormatContainsAllFields)
{
    std::string line = formatRunRecord(sample());
    EXPECT_NE(line.find("run=17"), std::string::npos);
    EXPECT_NE(line.find("target=l1_data"), std::string::npos);
    EXPECT_NE(line.find("scope=warp"), std::string::npos);
    EXPECT_NE(line.find("cycle=123456"), std::string::npos);
    EXPECT_NE(line.find("bits=3"), std::string::npos);
    EXPECT_NE(line.find("armed=1"), std::string::npos);
    EXPECT_NE(line.find("outcome=SDC"), std::string::npos);
    // Spaces in the detail are escaped so the line stays one token
    // per field.
    EXPECT_NE(line.find("detail=core2_line_14"), std::string::npos);
}

TEST(ReportLog, RoundTrip)
{
    RunRecord orig = sample();
    RunRecord back = parseRunRecord(formatRunRecord(orig));
    EXPECT_EQ(back.runIdx, orig.runIdx);
    EXPECT_EQ(back.plan.target, orig.plan.target);
    EXPECT_EQ(back.plan.scope, orig.plan.scope);
    EXPECT_EQ(back.plan.cycle, orig.plan.cycle);
    EXPECT_EQ(back.plan.nBits, orig.plan.nBits);
    EXPECT_EQ(back.plan.seed, orig.plan.seed);
    EXPECT_EQ(back.injection.armed, orig.injection.armed);
    EXPECT_EQ(back.verdict.outcome, orig.verdict.outcome);
    EXPECT_EQ(back.cycles, orig.cycles);
}

TEST(ReportLog, ParseAggregatesOutcomes)
{
    std::vector<RunRecord> records;
    for (int i = 0; i < 5; ++i) {
        RunRecord r = sample();
        r.runIdx = static_cast<uint32_t>(i);
        r.verdict.outcome = i < 3 ? Outcome::Masked : Outcome::Crash;
        records.push_back(r);
    }
    std::istringstream in(formatRunLog(records));
    CampaignResult result = parseRunLog(in);
    EXPECT_EQ(result.runs(), 5u);
    EXPECT_EQ(result.count(Outcome::Masked), 3u);
    EXPECT_EQ(result.count(Outcome::Crash), 2u);
}

TEST(ReportLog, ParserSkipsCommentsAndBlanks)
{
    std::istringstream in(
        "# header comment\n"
        "\n"
        "   \n"
        "run=0 target=l2 outcome=Timeout\n");
    CampaignResult result = parseRunLog(in);
    EXPECT_EQ(result.runs(), 1u);
    EXPECT_EQ(result.count(Outcome::Timeout), 1u);
}

TEST(ReportLog, MalformedLinesAreFatal)
{
    EXPECT_THROW(parseRunRecord("not key-value"), FatalError);
    EXPECT_THROW(parseRunRecord("bogus=1 outcome=SDC"), FatalError);
    EXPECT_THROW(parseRunRecord("run=1 target=l2"), FatalError);
    EXPECT_THROW(parseRunRecord("outcome=NotAnOutcome"), FatalError);
}

TEST(ReportLog, MinimalLineParses)
{
    RunRecord r = parseRunRecord("outcome=Masked");
    EXPECT_EQ(r.verdict.outcome, Outcome::Masked);
    EXPECT_EQ(r.runIdx, 0u);
    EXPECT_FALSE(r.injection.armed);
}

TEST(ReportLog, TryParseReportsInsteadOfThrowing)
{
    RunRecord r;
    EXPECT_TRUE(tryParseRunRecord("run=3 outcome=Crash", r));
    EXPECT_EQ(r.runIdx, 3u);
    EXPECT_EQ(r.verdict.outcome, Outcome::Crash);

    std::string err;
    EXPECT_FALSE(tryParseRunRecord("not key-value", r, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(tryParseRunRecord("run=NaN outcome=Crash", r));
    EXPECT_FALSE(tryParseRunRecord("run=1 target=l2", r));
}

TEST(ReportLog, TolerantParserSkipsDamageAndCounts)
{
    // A log with a corrupt middle line and a truncated tail (the
    // kill-at-any-point scenario) still yields every intact record.
    std::istringstream in(
        "# gpuFI-4 run log\n"
        "run=0 target=l2 outcome=Masked\n"
        "run=1 garbage\n"
        "run=2 target=l2 outcome=SDC\n"
        "run=3 target=l2 outco");
    std::vector<RunRecord> records;
    RunLogSummary s = parseRunLogTolerant(in, &records);
    EXPECT_EQ(s.parsed, 2u);
    EXPECT_EQ(s.malformed, 2u);
    EXPECT_EQ(s.result.runs(), 2u);
    EXPECT_EQ(s.result.count(Outcome::SDC), 1u);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].runIdx, 2u);
}

TEST(ReportLog, ToolOutcomesRoundTrip)
{
    RunRecord r = sample();
    r.verdict.outcome = Outcome::ToolHang;
    EXPECT_EQ(parseRunRecord(formatRunRecord(r)).verdict.outcome,
              Outcome::ToolHang);
    r.verdict.outcome = Outcome::ToolError;
    EXPECT_EQ(parseRunRecord(formatRunRecord(r)).verdict.outcome,
              Outcome::ToolError);
}
