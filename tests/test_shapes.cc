/**
 * @file
 * Paper-shape regression tests: small fixed-seed campaigns must
 * reproduce the qualitative findings of the paper's evaluation —
 * SDC dominance, the multiplicity effect, the technology effect on
 * FIT, and the low-vs-high vulnerability ordering of benchmarks.
 * Everything is seeded, so these are deterministic, not flaky.
 */

#include <gtest/gtest.h>

#include "fi/avf.hh"
#include "fi/campaign.hh"
#include "sim/gpu_config.hh"
#include "suite/suite.hh"

using namespace gpufi;
using namespace gpufi::fi;

namespace {

sim::GpuConfig
smallCard(const sim::GpuConfig &base)
{
    sim::GpuConfig c = base;
    c.numSms = 4;
    c.validate();
    return c;
}

/** Cycle-weighted register-file failure ratio of a whole app. */
double
regfileFr(const sim::GpuConfig &card, const std::string &bench,
          uint32_t runs, uint32_t bits = 1)
{
    CampaignRunner runner(card, suite::factoryFor(bench), 1);
    double fr = 0.0;
    uint64_t cycles = 0;
    for (const auto &prof : runner.golden().kernels) {
        CampaignSpec spec;
        spec.kernelName = prof.name;
        spec.target = FaultTarget::RegisterFile;
        spec.nBits = bits;
        spec.runs = runs;
        spec.seed = 11;
        fr += runner.run(spec).failureRatio() *
              static_cast<double>(prof.cycles);
        cycles += prof.cycles;
    }
    return fr / static_cast<double>(cycles);
}

} // namespace

TEST(PaperShapes, SdcDominatesCrashOverTheSuite)
{
    // Fig. 1: the dominant failure class is SDC; crashes are rare.
    sim::GpuConfig card = smallCard(sim::makeRtx2060());
    uint32_t sdc = 0, crash = 0;
    for (const char *bench : {"HS", "KM", "SRAD1", "GE", "VA"}) {
        CampaignRunner runner(card, suite::factoryFor(bench), 1);
        for (const auto &prof : runner.golden().kernels) {
            CampaignSpec spec;
            spec.kernelName = prof.name;
            spec.target = FaultTarget::RegisterFile;
            spec.runs = 60;
            spec.seed = 21;
            CampaignResult r = runner.run(spec);
            sdc += r.count(Outcome::SDC);
            crash += r.count(Outcome::Crash);
        }
    }
    EXPECT_GT(sdc, crash);
}

TEST(PaperShapes, TripleBitMoreHarmfulThanSingleBit)
{
    // Fig. 6: triple-bit faults raise the failure probability.
    sim::GpuConfig card = smallCard(sim::makeRtx2060());
    double single = regfileFr(card, "KM", 80, 1);
    double triple = regfileFr(card, "KM", 80, 3);
    EXPECT_GT(triple, single);
}

TEST(PaperShapes, OlderTechnologyDominatesFit)
{
    // Fig. 7: the 28 nm GTX Titan's FIT exceeds the 12 nm RTX 2060's
    // for the same workload (raw FIT/bit is ~6.7x higher).
    sim::GpuConfig rtx = smallCard(sim::makeRtx2060());
    sim::GpuConfig titan = smallCard(sim::makeGtxTitan());

    auto fitFor = [&](const sim::GpuConfig &card) {
        CampaignRunner runner(card, suite::factoryFor("HS"), 1);
        std::vector<KernelCampaignSet> sets;
        for (const auto &prof : runner.golden().kernels) {
            KernelCampaignSet set;
            set.profile = prof;
            CampaignSpec spec;
            spec.kernelName = prof.name;
            spec.target = FaultTarget::RegisterFile;
            spec.runs = 60;
            spec.seed = 31;
            set.byStructure[FaultTarget::RegisterFile] =
                runner.run(spec);
            sets.push_back(std::move(set));
        }
        return computeReport(card, sets).totalFit;
    };
    EXPECT_GT(fitFor(titan), fitFor(rtx));
}

TEST(PaperShapes, RegisterFileDominatesStructureContribution)
{
    // Fig. 2: the register file is the dominant contributor to the
    // total AVF for HS (largest structure holding live state).
    sim::GpuConfig card = smallCard(sim::makeRtx2060());
    CampaignRunner runner(card, suite::factoryFor("HS"), 1);
    KernelCampaignSet set;
    set.profile = runner.golden().profile("hotspot");
    for (FaultTarget t : {FaultTarget::RegisterFile,
                          FaultTarget::SharedMemory,
                          FaultTarget::L1Data, FaultTarget::L1Texture,
                          FaultTarget::L2}) {
        CampaignSpec spec;
        spec.kernelName = "hotspot";
        spec.target = t;
        spec.runs = 60;
        spec.seed = 41;
        set.byStructure[t] = runner.run(spec);
    }
    StructureSizes sizes = structureSizes(card, 0);
    double total = static_cast<double>(sizes.total());
    double regContribution =
        set.byStructure[FaultTarget::RegisterFile].failureRatio() *
        dfReg(card, set.profile) *
        static_cast<double>(sizes.of(FaultTarget::RegisterFile)) /
        total;
    double rest = kernelAvf(card, set) - regContribution;
    EXPECT_GT(regContribution, rest);
}

TEST(PaperShapes, WarpScopeMoreHarmfulWhereMaskingIsProbabilistic)
{
    // Table IV: warp-scope faults strike the same register bit in
    // every lane. Because liveness of a given (register, bit) is
    // highly correlated across lanes, this only raises the failure
    // probability for workloads whose per-thread masking is itself
    // probabilistic — KM's distance comparisons are the clearest
    // case in the suite.
    sim::GpuConfig card = smallCard(sim::makeRtx2060());
    CampaignRunner runner(card, suite::factoryFor("KM"), 1);
    CampaignSpec spec;
    spec.kernelName = "km_assign";
    spec.target = FaultTarget::RegisterFile;
    spec.runs = 150;
    spec.seed = 51;
    spec.scope = FaultScope::Thread;
    double thread = runner.run(spec).failureRatio();
    spec.scope = FaultScope::Warp;
    double warp = runner.run(spec).failureRatio();
    EXPECT_GT(warp, thread);
}
