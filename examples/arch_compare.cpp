/**
 * @file
 * Cross-architecture comparison: run one workload (SRAD2) on the
 * three modeled cards, then compare performance (cycles, occupancy)
 * and vulnerability (register-file failure ratio, chip FIT) — the
 * kind of generation-over-generation study the paper performs in
 * §VI.C and §VI.F.
 *
 * Build & run:  ./build/examples/arch_compare
 */

#include <cstdio>

#include "fi/avf.hh"
#include "fi/campaign.hh"
#include "sim/gpu_config.hh"
#include "suite/suite.hh"

using namespace gpufi;

int
main()
{
    const sim::GpuConfig cards[] = {sim::makeRtx2060(),
                                    sim::makeQuadroGv100(),
                                    sim::makeGtxTitan()};

    std::printf("%-14s %10s %10s %12s %12s %10s\n", "card", "cycles",
                "occupancy", "regfile FR", "wAVF%", "FIT");

    for (const auto &card : cards) {
        fi::CampaignRunner runner(card, suite::factoryFor("SRAD2"),
                                  1);
        const fi::GoldenRun &golden = runner.golden();

        std::vector<fi::KernelCampaignSet> sets;
        double regfileFr = 0.0;
        for (const auto &prof : golden.kernels) {
            fi::KernelCampaignSet set;
            set.profile = prof;
            for (auto target : {fi::FaultTarget::RegisterFile,
                                fi::FaultTarget::SharedMemory,
                                fi::FaultTarget::L1Texture,
                                fi::FaultTarget::L2}) {
                fi::CampaignSpec spec;
                spec.kernelName = prof.name;
                spec.target = target;
                spec.runs = 60;
                set.byStructure[target] = runner.run(spec);
            }
            regfileFr +=
                set.byStructure[fi::FaultTarget::RegisterFile]
                    .failureRatio() *
                static_cast<double>(prof.cycles);
            sets.push_back(std::move(set));
        }
        regfileFr /= static_cast<double>(golden.totalCycles);

        fi::AvfReport report = fi::computeReport(card, sets);
        std::printf("%-14s %10llu %10.3f %12.3f %12.4f %10.1f\n",
                    card.name.c_str(),
                    static_cast<unsigned long long>(
                        golden.totalCycles),
                    golden.appOccupancy, regfileFr,
                    report.wavf * 100.0, report.totalFit);
    }

    std::printf("\nExpected: the GTX Titan (28 nm) shows the highest"
                " FIT despite smaller structures, because its raw"
                " per-bit FIT rate is ~6.7x the 12 nm cards'.\n");
    return 0;
}
