/**
 * @file
 * Campaign demo: run a small statistical fault-injection campaign on
 * the HotSpot benchmark (register file + shared memory + L2), print
 * the fault-effect breakdown, the derated kernel AVF, the FIT rate,
 * and an excerpt of the per-run log that the parser module consumes.
 *
 * Build & run:  ./build/examples/campaign_demo
 */

#include <cstdio>
#include <sstream>

#include "fi/avf.hh"
#include "fi/campaign.hh"
#include "fi/report_log.hh"
#include "sim/gpu_config.hh"
#include "suite/suite.hh"

using namespace gpufi;

int
main()
{
    sim::GpuConfig card = sim::makeRtx2060();
    fi::CampaignRunner runner(card, suite::factoryFor("HS"),
                              /*threads=*/1);

    const fi::GoldenRun &golden = runner.golden();
    std::printf("golden run: %llu cycles over %zu launches, "
                "occupancy %.2f\n\n",
                static_cast<unsigned long long>(golden.totalCycles),
                golden.launches.size(), golden.appOccupancy);

    fi::KernelCampaignSet set;
    set.profile = golden.profile("hotspot");

    const fi::FaultTarget targets[] = {
        fi::FaultTarget::RegisterFile,
        fi::FaultTarget::SharedMemory,
        fi::FaultTarget::L2,
    };
    std::vector<fi::RunRecord> firstRecords;
    for (fi::FaultTarget target : targets) {
        fi::CampaignSpec spec;
        spec.kernelName = "hotspot";
        spec.target = target;
        spec.runs = 100;
        spec.keepRecords = firstRecords.empty();
        std::vector<fi::RunRecord> records;
        fi::CampaignResult r = runner.run(spec, &records);
        if (!records.empty())
            firstRecords = std::move(records);

        std::printf("%-14s masked %3u  perf %3u  sdc %3u  crash %3u"
                    "  timeout %3u   FR=%.3f\n",
                    fi::targetName(target),
                    r.count(fi::Outcome::Masked),
                    r.count(fi::Outcome::Performance),
                    r.count(fi::Outcome::SDC),
                    r.count(fi::Outcome::Crash),
                    r.count(fi::Outcome::Timeout), r.failureRatio());
        set.byStructure[target] = r;
    }

    std::printf("\nderating: df_reg=%.3f df_smem=%.3f\n",
                fi::dfReg(card, set.profile),
                fi::dfSmem(card, set.profile));
    std::printf("kernel AVF (eq. 2): %.4f%%\n",
                fi::kernelAvf(card, set) * 100.0);

    fi::AvfReport report = fi::computeReport(card, {set});
    std::printf("chip wAVF (eq. 3): %.4f%%   FIT: %.1f failures per "
                "10^9 device-hours\n",
                report.wavf * 100.0, report.totalFit);

    std::printf("\nrun-log excerpt (parser input format):\n");
    int shown = 0;
    for (const auto &rec : firstRecords) {
        std::printf("  %s\n", fi::formatRunRecord(rec).c_str());
        if (++shown == 5)
            break;
    }

    // Round-trip through the parser, as the offline flow would.
    std::istringstream in(fi::formatRunLog(firstRecords));
    fi::CampaignResult parsed = fi::parseRunLog(in);
    std::printf("\nparser recovers %u runs, FR=%.3f\n", parsed.runs(),
                parsed.failureRatio());
    return 0;
}
