/**
 * @file
 * Quickstart: assemble a kernel, run it on a simulated RTX 2060,
 * inspect results, then re-run with a single transient fault injected
 * into the register file and compare.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "fi/fault.hh"
#include "fi/injector.hh"
#include "isa/assembler.hh"
#include "mem/backing.hh"
#include "sim/gpu.hh"
#include "sim/gpu_config.hh"

using namespace gpufi;

namespace {

// SAXPY: y[i] = a*x[i] + y[i], one thread per element.
const char kSaxpy[] = R"(
.kernel saxpy
.reg 10
# params: 0=n 1=a(float bits) 2=&x 3=&y
    mov   r0, %ctaid_x
    mov   r1, %ntid_x
    mul   r0, r0, r1
    mov   r2, %tid_x
    add   r0, r0, r2
    param r3, 0
    setge r4, r0, r3
    brnz  r4, done
    shl   r5, r0, 2
    param r6, 2
    add   r6, r6, r5
    ldg   r7, [r6]          # x[i]
    param r8, 3
    add   r8, r8, r5
    ldg   r9, [r8]          # y[i]
    param r4, 1             # a
    fma   r9, r4, r7, r9
    stg   r9, [r8]
done:
    exit
)";

constexpr uint32_t kN = 1024;

/** One full run; returns the number of wrong output elements. */
uint32_t
runOnce(bool injectFault)
{
    mem::DeviceMemory dmem(8u << 20);

    // Host setup (the cudaMalloc/cudaMemcpy part).
    mem::Addr x = dmem.allocate(kN * 4);
    mem::Addr y = dmem.allocate(kN * 4);
    for (uint32_t i = 0; i < kN; ++i) {
        float xf = static_cast<float>(i) * 0.25f;
        float yf = 1.0f;
        dmem.write(x + i * 4, &xf, 4);
        dmem.write(y + i * 4, &yf, 4);
    }

    sim::Gpu gpu(sim::makeRtx2060(), dmem);

    if (injectFault) {
        // Flip one random bit of one random active thread's register
        // at cycle 120 — exactly what a campaign does, once.
        fi::FaultPlan plan;
        plan.target = fi::FaultTarget::RegisterFile;
        plan.cycle = 120;
        plan.nBits = 1;
        plan.seed = 2026;
        gpu.scheduleInjection(plan.cycle, [plan](sim::Gpu &g) {
            fi::InjectionRecord rec;
            applyFault(g, plan, &rec);
            std::printf("  injected: %s (%s)\n",
                        rec.armed ? "armed" : "no live target",
                        rec.detail.c_str());
        });
    }

    const float a = 2.0f;
    uint32_t aBits;
    __builtin_memcpy(&aBits, &a, 4);
    isa::Program prog = isa::assemble(kSaxpy);
    sim::LaunchStats stats =
        gpu.launch(prog.kernel("saxpy"), {kN / 256, 1}, {256, 1},
                   {kN, aBits, static_cast<uint32_t>(x),
                    static_cast<uint32_t>(y)});

    std::printf("  kernel '%s': %llu cycles, %llu warp instructions,"
                " occupancy %.2f\n",
                stats.kernelName.c_str(),
                static_cast<unsigned long long>(stats.cycles()),
                static_cast<unsigned long long>(
                    stats.warpInstructions),
                stats.occupancy);

    uint32_t wrong = 0;
    for (uint32_t i = 0; i < kN; ++i) {
        float expect = 2.0f * (static_cast<float>(i) * 0.25f) + 1.0f;
        float got;
        dmem.read(y + i * 4, &got, 4);
        if (got != expect)
            ++wrong;
    }
    return wrong;
}

} // namespace

int
main()
{
    std::printf("fault-free execution:\n");
    uint32_t cleanWrong = runOnce(false);
    std::printf("  wrong elements: %u\n\n", cleanWrong);

    std::printf("same execution with one register-file bit flip:\n");
    uint32_t faultyWrong = runOnce(true);
    std::printf("  wrong elements: %u -> %s\n", faultyWrong,
                faultyWrong == 0 ? "Masked"
                                 : "Silent Data Corruption");
    return cleanWrong == 0 ? 0 : 1;
}
