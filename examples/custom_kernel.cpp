/**
 * @file
 * Vulnerability-over-time study of a user-written kernel: sweep the
 * injection cycle across the kernel's execution and measure how the
 * failure probability evolves — the kind of targeted differential
 * study gpuFI-4's parameterization enables beyond whole-kernel
 * campaigns.
 *
 * The kernel below has two phases: a long accumulation loop (live
 * state in registers the whole time, ending in the output store)
 * followed by an equally long cooldown loop in which every data
 * register is dead. Faults in the first phase can corrupt the
 * output; faults in the second phase can at worst perturb timing.
 *
 * Build & run:  ./build/examples/custom_kernel
 */

#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "fi/fault.hh"
#include "fi/injector.hh"
#include "isa/assembler.hh"
#include "mem/backing.hh"
#include "sim/gpu.hh"
#include "sim/gpu_config.hh"

using namespace gpufi;

namespace {

const char kKernel[] = R"(
.kernel phases
.reg 10
# params: 0=n 1=&out  — each thread sums i*lane over n iterations
    mov   r0, %tid_x
    mov   r1, %ctaid_x
    mov   r2, %ntid_x
    mul   r1, r1, r2
    add   r0, r0, r1        # gid
    param r3, 0             # n
    mov   r4, 0             # acc
    mov   r5, 0             # i
loop:
    setge r6, r5, r3
    brnz  r6, store
    mul   r7, r5, r0
    add   r4, r4, r7
    add   r5, r5, 1
    bra   loop
store:
    shl   r8, r0, 2
    param r9, 1
    add   r9, r9, r8
    stg   r4, [r9]
    # Cooldown: registers are dead from here on; only the loop
    # counter can still affect behavior (timing, not values).
    param r5, 0
cool:
    sub   r5, r5, 1
    brnz  r5, cool
    exit
)";

constexpr uint32_t kThreads = 256;
constexpr uint32_t kIters = 64;

struct RunResult
{
    bool crashed = false;
    bool timedOut = false;
    std::vector<uint8_t> output;
    uint64_t cycles = 0;
};

RunResult
simulate(const fi::FaultPlan *plan, uint64_t cycleLimit)
{
    RunResult res;
    mem::DeviceMemory dmem(4u << 20);
    mem::Addr out = dmem.allocate(kThreads * 4);
    sim::GpuConfig cfg = sim::makeRtx2060();
    cfg.numSms = 4;
    sim::Gpu gpu(cfg, dmem);
    gpu.setCycleLimit(cycleLimit);
    if (plan) {
        fi::FaultPlan p = *plan;
        gpu.scheduleInjection(p.cycle, [p](sim::Gpu &g) {
            applyFault(g, p, nullptr);
        });
    }
    isa::Program prog = isa::assemble(kKernel);
    try {
        gpu.launch(prog.kernel("phases"), {1, 1}, {kThreads, 1},
                   {kIters, static_cast<uint32_t>(out)});
        res.output.assign(dmem.data(out, kThreads * 4),
                          dmem.data(out, kThreads * 4) +
                              kThreads * 4);
    } catch (const mem::DeviceFault &) {
        res.crashed = true;
    } catch (const sim::TimeoutError &) {
        res.timedOut = true;
    }
    res.cycles = gpu.cycle();
    return res;
}

} // namespace

int
main()
{
    RunResult golden = simulate(nullptr, ~0ull);
    std::printf("golden: %llu cycles\n\n",
                static_cast<unsigned long long>(golden.cycles));

    std::printf("%-22s %8s %8s %8s %8s\n", "injection window",
                "masked", "sdc", "crash", "timeout");

    const int kBuckets = 8;
    const int kRunsPerBucket = 60;
    Rng rng(7);
    for (int b = 0; b < kBuckets; ++b) {
        uint64_t lo = golden.cycles * static_cast<uint64_t>(b) /
                      kBuckets;
        uint64_t hi = golden.cycles *
                      static_cast<uint64_t>(b + 1) / kBuckets;
        int masked = 0, sdc = 0, crash = 0, timeout = 0;
        for (int r = 0; r < kRunsPerBucket; ++r) {
            fi::FaultPlan plan;
            plan.target = fi::FaultTarget::RegisterFile;
            plan.cycle = rng.range(lo, hi > lo ? hi - 1 : lo);
            plan.seed = rng();
            RunResult res = simulate(&plan, 2 * golden.cycles);
            if (res.crashed)
                ++crash;
            else if (res.timedOut)
                ++timeout;
            else if (res.output != golden.output)
                ++sdc;
            else
                ++masked;
        }
        std::printf("cycles [%6llu,%6llu) %8d %8d %8d %8d\n",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi), masked, sdc,
                    crash, timeout);
    }
    std::printf("\nExpected: SDCs concentrate in the first half "
                "(live accumulator); late-window faults are mostly "
                "masked or timing-only.\n");
    return 0;
}
